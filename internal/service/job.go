// Package service is the triangle-freeness testing service behind
// cmd/tricommd: a bounded worker pool that runs protocol sessions for jobs
// submitted over a JSON/HTTP API and streams per-trial results.
//
// A job names a graph (a generator spec or an uploaded edge list), a
// partition scheme, a protocol, a transport, and a trial count. Trials are
// executed through the harness runner (internal/harness/runner), so the
// service inherits its determinism contract: every trial's seed is
// TrialSeed(job seed, trial index), making each outcome independently
// reproducible — the API reports the per-trial seed so a client (or
// cmd/tritest) can regenerate the instance locally and audit the verdict.
package service

import (
	"errors"
	"fmt"

	"tricomm"
	"tricomm/internal/scenario"
	"tricomm/internal/transport"
)

// Limits keep one malformed or hostile job from starving the pool. The
// instance-size caps are the scenario registry's, referenced rather than
// duplicated so the two validation layers cannot drift apart.
const (
	// MaxN is the largest vertex universe a job may request.
	MaxN = scenario.MaxN
	// MaxEdges is the largest uploaded edge list.
	MaxEdges = 1 << 22
	// MaxTrials is the largest per-job trial count.
	MaxTrials = 10_000
	// MaxK is the largest player count.
	MaxK = scenario.MaxK
)

// GraphSpec names the graph a job tests: a declarative scenario (any
// family registered in internal/scenario, drawn per trial from the trial
// seed) or an explicit edge list shared by every trial. It is a thin
// alias over scenario.Spec — parsing and validation delegate to the
// scenario registry — plus the legacy "kind" selector: payloads that
// predate the scenario layer ({"kind": "far", "n": ..., "d": ..., "eps":
// ...} and friends) decode unchanged, because "kind" doubles as the
// family name when "family" is absent. One semantic caveat rides along
// with the registry's zero-means-default convention: a legacy payload
// that explicitly passed 0 for a parameter (e.g. d=0 for an empty random
// graph) now selects the family default instead, and out-of-range values
// the old path silently clamped (a negative construction eps) are
// rejected with an error.
type GraphSpec struct {
	scenario.Spec
	// Kind is the legacy family selector ("far", "random", "bipartite")
	// or "edges" for an uploaded edge list. When both Kind and Family are
	// set they must agree.
	Kind string `json:"kind,omitempty"`
	// Edges is the explicit edge list for kind "edges".
	Edges [][2]int `json:"edges,omitempty"`
}

// scenarioSpec resolves the legacy Kind selector into the scenario spec.
func (g GraphSpec) scenarioSpec() (scenario.Spec, error) {
	sp := g.Spec
	if sp.Family == "" {
		sp.Family = g.Kind
	} else if g.Kind != "" && g.Kind != sp.Family {
		return scenario.Spec{}, fmt.Errorf("graph kind %q conflicts with family %q", g.Kind, sp.Family)
	}
	return sp, nil
}

// canonical returns the registry-canonicalized view of the spec
// (generator families only; kind "edges" passes through unchanged).
func (g GraphSpec) canonical() (GraphSpec, error) {
	if g.Kind == "edges" {
		return g, nil
	}
	sp, err := g.scenarioSpec()
	if err != nil {
		return GraphSpec{}, err
	}
	canon, err := scenario.Canonical(sp)
	if err != nil {
		return GraphSpec{}, err
	}
	return GraphSpec{Spec: canon, Kind: g.Kind}, nil
}

// Validate checks the spec's structural invariants. Generator specs
// delegate to the scenario registry; edge lists are checked here.
func (g GraphSpec) Validate() error {
	if g.Kind == "edges" {
		if g.N < 1 || g.N > MaxN {
			return fmt.Errorf("graph n %d out of range [1, %d]", g.N, MaxN)
		}
		if len(g.Edges) > MaxEdges {
			return fmt.Errorf("edge list %d exceeds %d", len(g.Edges), MaxEdges)
		}
		for i, e := range g.Edges {
			if e[0] < 0 || e[1] < 0 || e[0] >= g.N || e[1] >= g.N {
				return fmt.Errorf("edge %d (%d,%d) out of range [0,%d)", i, e[0], e[1], g.N)
			}
			if e[0] == e[1] {
				return fmt.Errorf("edge %d (%d,%d) is a self-loop; the graph model is simple", i, e[0], e[1])
			}
		}
		return nil
	}
	_, err := g.canonical()
	return err
}

// ScenarioInfo is one catalog entry of the GET /v1/scenarios endpoint,
// generated from the scenario registry — any listed family is a valid
// job graph with no service-side code.
type ScenarioInfo struct {
	// Family is the registry name (usable as graph "family" or "kind").
	Family string `json:"family"`
	// Doc is the one-line description.
	Doc string `json:"doc"`
	// Params summarizes the accepted parameters and defaults.
	Params string `json:"params"`
	// TriangleFree, Certified, and PrescribesPlayers echo the family's
	// certificate contract.
	TriangleFree      bool `json:"triangle_free,omitempty"`
	Certified         bool `json:"certified,omitempty"`
	PrescribesPlayers bool `json:"prescribes_players,omitempty"`
	// Example is the canonical JSON spec of the family's defaults.
	Example string `json:"example"`
}

// Scenarios renders the registry catalog.
func Scenarios() []ScenarioInfo {
	fams := scenario.Families()
	out := make([]ScenarioInfo, 0, len(fams))
	for _, f := range fams {
		canon, err := scenario.Canonical(scenario.Spec{Family: f.Name})
		if err != nil {
			// Every family's defaults canonicalize; a failure here is a
			// registry bug, not a runtime condition.
			panic(fmt.Sprintf("service: family %s defaults invalid: %v", f.Name, err))
		}
		out = append(out, ScenarioInfo{
			Family:            f.Name,
			Doc:               f.Doc,
			Params:            f.Params,
			TriangleFree:      f.TriangleFree,
			Certified:         f.Certified,
			PrescribesPlayers: f.Prescribes,
			Example:           canon.JSON(),
		})
	}
	return out
}

// ParseGraphSpec turns a scenario argument — a registry family name or a
// JSON spec — into a job GraphSpec (the conversion tritest/tricli use for
// their -scenario flags).
func ParseGraphSpec(s string) (GraphSpec, error) {
	sp, err := scenario.Parse(s)
	if err != nil {
		return GraphSpec{}, err
	}
	return GraphSpec{Spec: sp}, nil
}

// JobSpec is one submitted job.
type JobSpec struct {
	// Graph is the instance under test.
	Graph GraphSpec `json:"graph"`
	// K is the number of players (default 4).
	K int `json:"k,omitempty"`
	// Partition names the split scheme (default "disjoint").
	Partition string `json:"partition,omitempty"`
	// Protocol names the tester (default "sim-oblivious").
	Protocol string `json:"protocol,omitempty"`
	// Eps is the farness parameter the tester targets (default 0.1).
	Eps float64 `json:"eps,omitempty"`
	// KnownDegree tells the tester the union graph's true average degree.
	KnownDegree bool `json:"known_degree,omitempty"`
	// Trials is the repetition count (default 1). Trial i runs with seed
	// TrialSeed(Seed, i) for both instance generation and the split.
	Trials int `json:"trials,omitempty"`
	// Transport names the session transport: "chan" (default), "pipe",
	// "tcp", or "wan".
	Transport string `json:"transport,omitempty"`
	// Seed is the job's base seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Check additionally computes each trial instance's ground truth
	// (whether the union graph actually contains a triangle), for health
	// checks.
	Check bool `json:"check,omitempty"`
	// Faults injects deterministic link faults into every trial session:
	// "" / "off" (none), a preset ("lossy", "chaos"), or a JSON
	// transport.FaultSpec. The schedule is seeded per trial from the trial
	// seed (unless the spec pins a seed), so faulted trials replay exactly.
	Faults string `json:"faults,omitempty"`
	// TrialTimeoutMS bounds one trial's wall clock in milliseconds; a
	// trial that exceeds it is retried and eventually recorded aborted.
	// 0 means no per-trial timeout.
	TrialTimeoutMS int64 `json:"trial_timeout_ms,omitempty"`
	// MaxFailedTrials is the per-job budget of aborted trials: a job that
	// finishes with 1..MaxFailedTrials aborted trials degrades to state
	// "partial" instead of "failed". 0 means any aborted trial fails the
	// job (but completed trials are still reported).
	MaxFailedTrials int `json:"max_failed_trials,omitempty"`
}

// withDefaults fills the defaulted fields in, canonicalizing the graph
// spec through the scenario registry (so the echoed spec names every
// parameter explicitly). A spec the registry rejects is left as-is for
// Validate to diagnose. When the scenario family prescribes the
// per-player assignment, the job-level K is superseded by the family's —
// the echo then reports the player count the trials actually run with.
func (s JobSpec) withDefaults() JobSpec {
	if s.K == 0 {
		s.K = 4
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if g, err := s.Graph.canonical(); err == nil {
		s.Graph = g
		if f, ok := scenario.Lookup(g.Family); ok && f.Prescribes && g.K > 0 {
			s.K = g.K
		}
	}
	return s
}

// Validate checks the job's structural invariants and name fields.
func (s JobSpec) Validate() error {
	if err := s.Graph.Validate(); err != nil {
		return err
	}
	if s.K < 1 || s.K > MaxK {
		return fmt.Errorf("k %d out of range [1, %d]", s.K, MaxK)
	}
	if s.Trials < 0 || s.Trials > MaxTrials {
		return fmt.Errorf("trials %d out of range [0, %d]", s.Trials, MaxTrials)
	}
	if s.Eps < 0 || s.Eps > 1 {
		return fmt.Errorf("eps %v out of range [0, 1]", s.Eps)
	}
	if _, err := tricomm.ParseSplitScheme(s.Partition); err != nil {
		return err
	}
	if _, err := tricomm.ParseProtocol(s.Protocol); err != nil {
		return err
	}
	if _, err := tricomm.ParseTransport(s.Transport); err != nil {
		return err
	}
	if _, err := transport.ParseFaultSpec(s.Faults); err != nil {
		return err
	}
	if s.TrialTimeoutMS < 0 {
		return fmt.Errorf("trial_timeout_ms %d negative", s.TrialTimeoutMS)
	}
	if s.MaxFailedTrials < 0 || s.MaxFailedTrials > MaxTrials {
		return fmt.Errorf("max_failed_trials %d out of range [0, %d]", s.MaxFailedTrials, MaxTrials)
	}
	return nil
}

// options maps the spec to facade options for one trial's graph.
func (s JobSpec) options(avgDegree float64) (tricomm.Options, error) {
	p, err := tricomm.ParseProtocol(s.Protocol)
	if err != nil {
		return tricomm.Options{}, err
	}
	tr, err := tricomm.ParseTransport(s.Transport)
	if err != nil {
		return tricomm.Options{}, err
	}
	opts := tricomm.Options{Protocol: p, Eps: s.Eps, Transport: tr, Faults: s.Faults}
	if s.KnownDegree {
		opts.AvgDegree = avgDegree
	}
	return opts, nil
}

// TrialOutcome is one trial's result, streamed to watchers as it lands.
type TrialOutcome struct {
	// Trial is the trial index in [0, Trials).
	Trial int `json:"trial"`
	// Seed is the trial's derived seed; regenerating the instance from it
	// reproduces this outcome exactly.
	Seed uint64 `json:"seed"`
	// TriangleFree is the verdict.
	TriangleFree bool `json:"triangle_free"`
	// Witness is the exhibited triangle when the verdict is "found".
	Witness *[3]int `json:"witness,omitempty"`
	// Bits is the total communication of the run.
	Bits int64 `json:"bits"`
	// WireBytes is the framed transport traffic of the run's
	// coordinator-model sessions (0 for transportless models).
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Rounds is the protocol round count.
	Rounds int64 `json:"rounds"`
	// PhaseBits attributes bits to protocol phases.
	PhaseBits map[string]int64 `json:"phase_bits,omitempty"`
	// HasTriangle is the instance's ground truth, present when the job
	// asked for Check.
	HasTriangle *bool `json:"has_triangle,omitempty"`
	// Retransmits and FramesLost are the session's resilience counters,
	// nonzero only for trials run with fault injection.
	Retransmits int64 `json:"retransmits,omitempty"`
	FramesLost  int64 `json:"frames_lost,omitempty"`
	// Aborted marks a trial that exhausted its retries without completing
	// (session aborted by faults or trial timeout); Error carries the
	// cause. Aborted trials have no verdict.
	Aborted bool   `json:"aborted,omitempty"`
	Error   string `json:"error,omitempty"`
	// Retries counts re-runs this trial consumed before completing or
	// being recorded aborted.
	Retries int `json:"retries,omitempty"`
}

// JobState is a job's lifecycle position.
type JobState string

// Job states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StatePartial is a job that finished with some trials aborted, within
	// its max_failed_trials budget: every completed trial's result is
	// valid and present, only the aborted ones are missing verdicts.
	StatePartial JobState = "partial"
)

// Finished reports whether the state is terminal (done, partial, or
// failed) — the condition watchers and GC key on.
func (s JobState) Finished() bool {
	return s == StateDone || s == StateFailed || s == StatePartial
}

// Summary aggregates a finished job.
type Summary struct {
	// Trials is the executed trial count.
	Trials int `json:"trials"`
	// Found is the number of trials that exhibited a triangle.
	Found int `json:"found"`
	// MeanBits is the mean total communication per trial.
	MeanBits float64 `json:"mean_bits"`
	// MaxBits is the largest per-trial communication.
	MaxBits int64 `json:"max_bits"`
	// WireBytes is the summed transport traffic.
	WireBytes int64 `json:"wire_bytes"`
	// ElapsedMS is the job's wall-clock run time in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// FailedTrials counts trials recorded aborted (state "partial" when
	// within the job's budget). Aborted trials are excluded from Found,
	// MeanBits, and MaxBits.
	FailedTrials int `json:"failed_trials,omitempty"`
	// Retries counts trial re-runs across the job (including those that
	// eventually succeeded).
	Retries int `json:"retries,omitempty"`
}

// JobInfo is the API view of a job.
type JobInfo struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// State is the lifecycle position.
	State JobState `json:"state"`
	// Error is the failure cause when State is "failed".
	Error string `json:"error,omitempty"`
	// Spec echoes the submitted job (with defaults filled in).
	Spec JobSpec `json:"spec"`
	// TrialsDone counts completed trials.
	TrialsDone int `json:"trials_done"`
	// Results are the per-trial outcomes, in trial order, populated as the
	// job runs. A paged request (offset/limit) returns a window of the
	// contiguous result prefix; ResultsOffset and ResultsTotal locate it.
	Results []TrialOutcome `json:"results,omitempty"`
	// ResultsOffset is the trial index of Results[0] (after clamping).
	ResultsOffset int `json:"results_offset,omitempty"`
	// ResultsTotal is the length of the available result prefix,
	// regardless of the window requested.
	ResultsTotal int `json:"results_total,omitempty"`
	// Summary is present once the job is done.
	Summary *Summary `json:"summary,omitempty"`
}

// ErrInvalid wraps client-fault rejections (malformed payloads, specs
// failing validation); the HTTP layer maps it to 400 where unrecognized
// errors are 500.
var ErrInvalid = errors.New("service: invalid job")

// ErrBusy is returned by Submit when the queue is full.
var ErrBusy = errors.New("service: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: server closed")

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("service: no such job")
