// Package service is the triangle-freeness testing service behind
// cmd/tricommd: a bounded worker pool that runs protocol sessions for jobs
// submitted over a JSON/HTTP API and streams per-trial results.
//
// A job names a graph (a generator spec or an uploaded edge list), a
// partition scheme, a protocol, a transport, and a trial count. Trials are
// executed through the harness runner (internal/harness/runner), so the
// service inherits its determinism contract: every trial's seed is
// TrialSeed(job seed, trial index), making each outcome independently
// reproducible — the API reports the per-trial seed so a client (or
// cmd/tritest) can regenerate the instance locally and audit the verdict.
package service

import (
	"errors"
	"fmt"

	"tricomm"
)

// Limits keep one malformed or hostile job from starving the pool.
const (
	// MaxN is the largest vertex universe a job may request.
	MaxN = 1 << 20
	// MaxEdges is the largest uploaded edge list.
	MaxEdges = 1 << 22
	// MaxTrials is the largest per-job trial count.
	MaxTrials = 10_000
	// MaxK is the largest player count.
	MaxK = 256
)

// GraphSpec names the graph a job tests: either a generator (far, random,
// bipartite — drawn per trial from the trial seed) or an explicit edge
// list shared by every trial.
type GraphSpec struct {
	// Kind is "far", "random", "bipartite", or "edges".
	Kind string `json:"kind"`
	// N is the vertex universe size.
	N int `json:"n"`
	// D is the target average degree (generator kinds).
	D float64 `json:"d,omitempty"`
	// Eps is the construction farness for kind "far".
	Eps float64 `json:"eps,omitempty"`
	// Edges is the explicit edge list for kind "edges".
	Edges [][2]int `json:"edges,omitempty"`
}

// Validate checks the spec's structural invariants.
func (g GraphSpec) Validate() error {
	if g.N < 1 || g.N > MaxN {
		return fmt.Errorf("graph n %d out of range [1, %d]", g.N, MaxN)
	}
	switch g.Kind {
	case "far", "random", "bipartite":
		if g.D < 0 || g.D > float64(g.N) {
			return fmt.Errorf("graph degree %v out of range", g.D)
		}
	case "edges":
		if len(g.Edges) > MaxEdges {
			return fmt.Errorf("edge list %d exceeds %d", len(g.Edges), MaxEdges)
		}
		for i, e := range g.Edges {
			if e[0] < 0 || e[1] < 0 || e[0] >= g.N || e[1] >= g.N {
				return fmt.Errorf("edge %d (%d,%d) out of range [0,%d)", i, e[0], e[1], g.N)
			}
		}
	default:
		return fmt.Errorf("unknown graph kind %q", g.Kind)
	}
	return nil
}

// JobSpec is one submitted job.
type JobSpec struct {
	// Graph is the instance under test.
	Graph GraphSpec `json:"graph"`
	// K is the number of players (default 4).
	K int `json:"k,omitempty"`
	// Partition names the split scheme (default "disjoint").
	Partition string `json:"partition,omitempty"`
	// Protocol names the tester (default "sim-oblivious").
	Protocol string `json:"protocol,omitempty"`
	// Eps is the farness parameter the tester targets (default 0.1).
	Eps float64 `json:"eps,omitempty"`
	// KnownDegree tells the tester the union graph's true average degree.
	KnownDegree bool `json:"known_degree,omitempty"`
	// Trials is the repetition count (default 1). Trial i runs with seed
	// TrialSeed(Seed, i) for both instance generation and the split.
	Trials int `json:"trials,omitempty"`
	// Transport names the session transport: "chan" (default), "pipe",
	// "tcp", or "wan".
	Transport string `json:"transport,omitempty"`
	// Seed is the job's base seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Check additionally computes each trial instance's ground truth
	// (whether the union graph actually contains a triangle), for health
	// checks.
	Check bool `json:"check,omitempty"`
}

// withDefaults fills the defaulted fields in.
func (s JobSpec) withDefaults() JobSpec {
	if s.K == 0 {
		s.K = 4
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate checks the job's structural invariants and name fields.
func (s JobSpec) Validate() error {
	if err := s.Graph.Validate(); err != nil {
		return err
	}
	if s.K < 1 || s.K > MaxK {
		return fmt.Errorf("k %d out of range [1, %d]", s.K, MaxK)
	}
	if s.Trials < 0 || s.Trials > MaxTrials {
		return fmt.Errorf("trials %d out of range [0, %d]", s.Trials, MaxTrials)
	}
	if s.Eps < 0 || s.Eps > 1 {
		return fmt.Errorf("eps %v out of range [0, 1]", s.Eps)
	}
	if _, err := tricomm.ParseSplitScheme(s.Partition); err != nil {
		return err
	}
	if _, err := tricomm.ParseProtocol(s.Protocol); err != nil {
		return err
	}
	if _, err := tricomm.ParseTransport(s.Transport); err != nil {
		return err
	}
	return nil
}

// options maps the spec to facade options for one trial's graph.
func (s JobSpec) options(avgDegree float64) (tricomm.Options, error) {
	p, err := tricomm.ParseProtocol(s.Protocol)
	if err != nil {
		return tricomm.Options{}, err
	}
	tr, err := tricomm.ParseTransport(s.Transport)
	if err != nil {
		return tricomm.Options{}, err
	}
	opts := tricomm.Options{Protocol: p, Eps: s.Eps, Transport: tr}
	if s.KnownDegree {
		opts.AvgDegree = avgDegree
	}
	return opts, nil
}

// TrialOutcome is one trial's result, streamed to watchers as it lands.
type TrialOutcome struct {
	// Trial is the trial index in [0, Trials).
	Trial int `json:"trial"`
	// Seed is the trial's derived seed; regenerating the instance from it
	// reproduces this outcome exactly.
	Seed uint64 `json:"seed"`
	// TriangleFree is the verdict.
	TriangleFree bool `json:"triangle_free"`
	// Witness is the exhibited triangle when the verdict is "found".
	Witness *[3]int `json:"witness,omitempty"`
	// Bits is the total communication of the run.
	Bits int64 `json:"bits"`
	// WireBytes is the framed transport traffic of the run's
	// coordinator-model sessions (0 for transportless models).
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Rounds is the protocol round count.
	Rounds int64 `json:"rounds"`
	// PhaseBits attributes bits to protocol phases.
	PhaseBits map[string]int64 `json:"phase_bits,omitempty"`
	// HasTriangle is the instance's ground truth, present when the job
	// asked for Check.
	HasTriangle *bool `json:"has_triangle,omitempty"`
}

// JobState is a job's lifecycle position.
type JobState string

// Job states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Summary aggregates a finished job.
type Summary struct {
	// Trials is the executed trial count.
	Trials int `json:"trials"`
	// Found is the number of trials that exhibited a triangle.
	Found int `json:"found"`
	// MeanBits is the mean total communication per trial.
	MeanBits float64 `json:"mean_bits"`
	// MaxBits is the largest per-trial communication.
	MaxBits int64 `json:"max_bits"`
	// WireBytes is the summed transport traffic.
	WireBytes int64 `json:"wire_bytes"`
	// ElapsedMS is the job's wall-clock run time in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// JobInfo is the API view of a job.
type JobInfo struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// State is the lifecycle position.
	State JobState `json:"state"`
	// Error is the failure cause when State is "failed".
	Error string `json:"error,omitempty"`
	// Spec echoes the submitted job (with defaults filled in).
	Spec JobSpec `json:"spec"`
	// TrialsDone counts completed trials.
	TrialsDone int `json:"trials_done"`
	// Results are the per-trial outcomes, in trial order, populated as the
	// job runs.
	Results []TrialOutcome `json:"results,omitempty"`
	// Summary is present once the job is done.
	Summary *Summary `json:"summary,omitempty"`
}

// ErrBusy is returned by Submit when the queue is full.
var ErrBusy = errors.New("service: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: server closed")

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("service: no such job")
