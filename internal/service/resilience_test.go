package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tricomm/internal/scenario"
)

// faultyJob is an interactive-protocol job (the only protocol whose frames
// cross transport links, hence the only one faults can touch).
func faultyJob(trials int, seed uint64, faults string) JobSpec {
	return JobSpec{
		Graph:       GraphSpec{Kind: "far", Spec: scenario.Spec{N: 128, D: 6, Eps: 0.25}},
		K:           3,
		Protocol:    "interactive",
		Eps:         0.25,
		KnownDegree: true,
		Trials:      trials,
		Seed:        seed,
		Faults:      faults,
	}
}

// TestFaultedJobCompletesIdentical pins the service half of the resilience
// contract: a job run over a survivable fault schedule lands in StateDone
// with per-trial verdicts and bit counts identical to the fault-free job,
// and the loss shows up only in the resilience counters.
func TestFaultedJobCompletesIdentical(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	clean, err := cl.Submit(ctx, faultyJob(3, 5, ""))
	if err != nil {
		t.Fatal(err)
	}
	base, err := cl.Wait(ctx, clean.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if base.State != StateDone {
		t.Fatalf("fault-free job finished %s: %s", base.State, base.Error)
	}

	ji, err := cl.Submit(ctx, faultyJob(3, 5, `{"drop":0.15,"corrupt":0.05,"duplicate":0.05,"deadline_ms":10000}`))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("faulted job finished %s: %s", fin.State, fin.Error)
	}
	var retrans, lost int64
	for i, r := range fin.Results {
		b := base.Results[i]
		if r.TriangleFree != b.TriangleFree || r.Bits != b.Bits || r.Rounds != b.Rounds {
			t.Fatalf("trial %d diverged under faults: %+v vs %+v", i, r, b)
		}
		if r.WireBytes <= b.WireBytes {
			t.Fatalf("trial %d wire bytes %d not above clean %d", i, r.WireBytes, b.WireBytes)
		}
		retrans += r.Retransmits
		lost += r.FramesLost
	}
	if retrans == 0 || lost == 0 {
		t.Fatalf("loss at these rates must reach the outcomes: retrans %d lost %d", retrans, lost)
	}
}

// TestAbortedTrialsDegradeToPartial pins the failure budget: trials whose
// fault schedule exhausts the retransmit budget are recorded aborted (with
// the retry count they consumed), and the job degrades to StatePartial
// within max_failed_trials — or StateFailed beyond it — instead of
// silently discarding the completed trials.
func TestAbortedTrialsDegradeToPartial(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	// drop 0.9 with a 2-frame budget aborts every session deterministically.
	const hopeless = `{"drop":0.9,"max_resend":2,"deadline_ms":5000}`
	spec := faultyJob(2, 3, hopeless)
	spec.MaxFailedTrials = 2
	ji, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StatePartial {
		t.Fatalf("job with all trials aborted inside budget: state %s (%s)", fin.State, fin.Error)
	}
	if fin.Summary == nil || fin.Summary.FailedTrials != 2 {
		t.Fatalf("summary must count the aborted trials: %+v", fin.Summary)
	}
	for _, r := range fin.Results {
		if !r.Aborted || !strings.Contains(r.Error, "aborted") {
			t.Fatalf("trial %d not recorded aborted: %+v", r.Trial, r)
		}
		if r.Retries != 2 { // the default retry budget, fully consumed
			t.Fatalf("trial %d consumed %d retries, want 2", r.Trial, r.Retries)
		}
	}
	st, err := cl.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Partial != 1 || st.TrialsAborted != 2 || st.TrialRetries != 4 {
		t.Fatalf("stats missed the aborts: %+v", st)
	}

	// The same schedule beyond the budget fails the job — but keeps the
	// per-trial record of what happened.
	spec.MaxFailedTrials = 0
	ji, err = cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err = cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || !strings.Contains(fin.Error, "max_failed_trials") {
		t.Fatalf("job over budget: state %s (%s)", fin.State, fin.Error)
	}
	if len(fin.Results) != 2 || !fin.Results[0].Aborted {
		t.Fatalf("failed job lost its trial record: %+v", fin.Results)
	}
}

// TestTrialTimeoutAborts pins the per-trial deadline: a trial that cannot
// finish inside trial_timeout_ms is retried and then recorded aborted.
func TestTrialTimeoutAborts(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	spec := faultyJob(1, 9, "")
	spec.Graph.Spec.N = 1024
	spec.TrialTimeoutMS = 1
	spec.MaxFailedTrials = 1
	ji, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StatePartial || len(fin.Results) != 1 || !fin.Results[0].Aborted {
		t.Fatalf("1ms trial budget on a 1024-vertex interactive session: %+v (%s)", fin.Results, fin.Error)
	}
}

// TestClientRetries pins the client's retry discipline: GETs retry through
// 503s (honoring Retry-After), POSTs retry only on replies the server sends
// without acting (429/503) and surface everything else immediately, and
// 404 maps to the typed ErrNotFound without a retry.
func TestClientRetries(t *testing.T) {
	var gets, posts, notFound atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if gets.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, Stats{Workers: 9})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch posts.Add(1) {
		case 1:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: "boom"})
		case 2:
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		default:
			writeJSON(w, http.StatusAccepted, JobInfo{ID: "job-1"})
		}
	})
	mux.HandleFunc("GET /v1/jobs/nope", func(w http.ResponseWriter, r *http.Request) {
		notFound.Add(1)
		writeErr(w, ErrNotFound)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()
	cl := &Client{Base: hs.URL, HTTP: hs.Client(),
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}}
	ctx := context.Background()

	st, err := cl.ServerStats(ctx)
	if err != nil || st.Workers != 9 {
		t.Fatalf("GET through 503s: %+v, %v", st, err)
	}
	if gets.Load() != 3 {
		t.Fatalf("stats fetched %d times, want 3", gets.Load())
	}

	if _, err := cl.Submit(ctx, JobSpec{}); err == nil || errors.Is(err, ErrBusy) {
		t.Fatalf("POST met a 500: %v, want an immediate non-busy error", err)
	}
	if posts.Load() != 1 {
		t.Fatalf("500 on POST must not be retried, saw %d posts", posts.Load())
	}
	ji, err := cl.Submit(ctx, JobSpec{})
	if err != nil || ji.ID != "job-1" {
		t.Fatalf("POST through a 503: %+v, %v", ji, err)
	}
	if posts.Load() != 3 {
		t.Fatalf("503 on POST must be retried exactly once here, saw %d posts", posts.Load())
	}

	if _, err := cl.Job(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing job: %v, want ErrNotFound", err)
	}
	if notFound.Load() != 1 {
		t.Fatalf("404 must not be retried, saw %d calls", notFound.Load())
	}
}

// TestStreamFromResumesAtOffset pins the reconnect contract: a consumer
// that saw the first k trials resumes with ?offset=k and receives exactly
// the rest, then the final envelope.
func TestStreamFromResumesAtOffset(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	ji, err := cl.Submit(ctx, farJob(96, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, ji.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var got []int
	fin, err := cl.StreamFrom(ctx, ji.ID, 3, func(out TrialOutcome) error {
		got = append(got, out.Trial)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("resumed stream delivered trials %v, want [3 4]", got)
	}
	if fin.ID != ji.ID || fin.State != StateDone {
		t.Fatalf("resumed stream final envelope: %+v", fin)
	}
}
