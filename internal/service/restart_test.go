package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitState polls a job on the server directly until it reaches a
// terminal state.
func waitState(t *testing.T, s *Server, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		ji, err := s.Job(id, true)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if ji.State == StateDone || ji.State == StateFailed {
			return ji
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, ji.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRestartResumesByteIdentical is the acceptance test for the durable
// store: a server killed mid-job and restarted on the same store
// completes the job with per-trial results byte-identical to an
// uninterrupted run, re-executing only the trials that had not landed.
func TestRestartResumesByteIdentical(t *testing.T) {
	const trials = 40
	path := filepath.Join(t.TempDir(), "jobs.db")
	spec := farJob(512, trials, 42)

	// Phase 1: run against a file store and kill the server mid-job.
	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Store: st})
	ji, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, err := s.Job(ji.ID, false)
		if err != nil {
			t.Fatal(err)
		}
		if cur.TrialsDone >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reopen the store; the job must come back queued with its
	// landed trials intact, resume automatically, and finish.
	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, landed, ok := st2.GetJob(ji.ID)
	if !ok {
		t.Fatalf("job %s not in reopened store", ji.ID)
	}
	if rec.State == StateDone || rec.State == StateFailed {
		t.Fatalf("interrupted job persisted as %s", rec.State)
	}
	preserved := len(landed)
	if preserved >= trials {
		t.Fatalf("job finished before the kill (%d trials); can't exercise resume", preserved)
	}

	s2 := New(Config{Workers: 1, Store: st2})
	if got := s2.Stats().Resumed; got != 1 {
		t.Fatalf("Resumed = %d, want 1", got)
	}
	fin := waitState(t, s2, ji.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed job finished %s: %s", fin.State, fin.Error)
	}
	// Only the missing trials ran; the landed ones were kept verbatim.
	if got := s2.Stats().TrialsRun; got != int64(trials-preserved) {
		t.Fatalf("resumed server ran %d trials, want %d (%d preserved)",
			got, trials-preserved, preserved)
	}
	s2.Close()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: reference uninterrupted run on the default memory store.
	ref := New(Config{Workers: 1})
	rji, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	rfin := waitState(t, ref, rji.ID)
	ref.Close()
	if rfin.State != StateDone {
		t.Fatalf("reference job failed: %s", rfin.Error)
	}

	got, err := json.Marshal(fin.Results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rfin.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed results differ from uninterrupted run\nresumed:  %.200s\nuninterrupted: %.200s",
			got, want)
	}
	if fin.Summary.Found != rfin.Summary.Found || fin.Summary.MeanBits != rfin.Summary.MeanBits {
		t.Fatalf("summaries differ: %+v vs %+v", fin.Summary, rfin.Summary)
	}
}

// TestResumeBacklogBeyondQueueDepth pins that a restart re-enqueues every
// unfinished job even when the backlog exceeds QueueDepth — resume must
// never be shed by the server's own backpressure.
func TestResumeBacklogBeyondQueueDepth(t *testing.T) {
	st := NewMemStore()
	const backlog = 5
	for i := 1; i <= backlog; i++ {
		rec := JobRecord{
			ID:   fmt.Sprintf("job-%d", i),
			Seq:  int64(i),
			Spec: farJob(64, 2, uint64(i)).withDefaults(),
			State: func() JobState {
				if i%2 == 0 {
					return StateRunning // crashed mid-run
				}
				return StateQueued
			}(),
			CreatedMS: int64(i),
			UpdatedMS: int64(i),
		}
		if err := st.PutJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Config{Workers: 2, QueueDepth: 1, Store: st})
	defer s.Close()
	if got := s.Stats().Resumed; got != backlog {
		t.Fatalf("Resumed = %d, want %d", got, backlog)
	}
	for i := 1; i <= backlog; i++ {
		fin := waitState(t, s, fmt.Sprintf("job-%d", i))
		if fin.State != StateDone {
			t.Fatalf("resumed job-%d finished %s: %s", i, fin.State, fin.Error)
		}
		if len(fin.Results) != 2 {
			t.Fatalf("resumed job-%d has %d results", i, len(fin.Results))
		}
	}
	// The ID counter resumes past the backlog without colliding.
	ji, err := s.Submit(farJob(32, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if ji.ID != fmt.Sprintf("job-%d", backlog+1) {
		t.Fatalf("post-resume ID = %s, want job-%d", ji.ID, backlog+1)
	}
}

// TestSubmitBusyLeavesNoIDGaps is the regression test for the ID-burn
// bug: a submission rejected with ErrBusy must not consume a job ID.
func TestSubmitBusyLeavesNoIDGaps(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	if _, err := s.Submit(farJob(256, 150, 1)); err != nil { // occupies the worker
		t.Fatal(err)
	}
	accepted := 1
	sawBusy := false
	for i := 0; i < 50 && !sawBusy; i++ {
		_, err := s.Submit(farJob(32, 1, uint64(i+2)))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBusy):
			sawBusy = true
		default:
			t.Fatalf("submit: %v", err)
		}
	}
	if !sawBusy {
		t.Fatal("queue never reported ErrBusy")
	}
	// Drain everything, then the next accepted ID must be exactly
	// accepted+1 — rejected submissions left no gaps.
	for _, ji := range s.Jobs() {
		waitState(t, s, ji.ID)
	}
	ji, err := s.Submit(farJob(32, 1, 99))
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("job-%d", accepted+1); ji.ID != want {
		t.Fatalf("ID after %d accepted submissions = %s, want %s", accepted, ji.ID, want)
	}
}

// TestResultPagination covers ?offset=&limit= on GET /v1/jobs/{id} and
// the client's JobPage, including clamping and the envelope-only probe.
func TestResultPagination(t *testing.T) {
	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	ctx := context.Background()

	ji, err := cl.Submit(ctx, farJob(96, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, ji.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		offset, limit  int
		wantLen, wantO int
	}{
		{0, -1, 10, 0},  // everything (the legacy shape)
		{0, 3, 3, 0},    // first page
		{3, 3, 3, 3},    // middle page
		{8, 10, 2, 8},   // short final page
		{100, 5, 0, 10}, // offset past the end clamps
		{0, 0, 0, 0},    // envelope-only probe
	}
	for _, tc := range cases {
		page, err := cl.JobPage(ctx, ji.ID, tc.offset, tc.limit)
		if err != nil {
			t.Fatalf("JobPage(%d,%d): %v", tc.offset, tc.limit, err)
		}
		if len(page.Results) != tc.wantLen || page.ResultsTotal != 10 || page.ResultsOffset != tc.wantO {
			t.Fatalf("JobPage(%d,%d) = %d results, offset %d, total %d",
				tc.offset, tc.limit, len(page.Results), page.ResultsOffset, page.ResultsTotal)
		}
		for i, r := range page.Results {
			if r.Trial != page.ResultsOffset+i {
				t.Fatalf("page (%d,%d) result %d has trial %d", tc.offset, tc.limit, i, r.Trial)
			}
		}
	}
	// Malformed paging parameters are client faults: 400.
	resp, err := cl.http().Get(cl.Base + "/v1/jobs/" + ji.ID + "?offset=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("offset=-1 returned %d, want 400", resp.StatusCode)
	}
}

// TestWriteErrStatusCodes pins the error→status mapping, in particular
// the two fixed bugs: oversized bodies are 413 (was 400) and
// unrecognized internal errors are 500 (was 400).
func TestWriteErrStatusCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrNotFound, http.StatusNotFound},
		{ErrBusy, http.StatusServiceUnavailable},
		{ErrClosed, http.StatusServiceUnavailable},
		{fmt.Errorf("%w: bad spec", ErrInvalid), http.StatusBadRequest},
		{fmt.Errorf("decode job: %w", &http.MaxBytesError{Limit: 5}), http.StatusRequestEntityTooLarge},
		{errors.New("trial 3 (seed 9): session exploded"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeErr(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("writeErr(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
	}
}

// TestSubmitBodyTooLarge413 covers the full HTTP path: a body over the
// submission cap must surface as 413, not 400.
func TestSubmitBodyTooLarge413(t *testing.T) {
	defer func(prev int64) { maxBodyBytes = prev }(maxBodyBytes)
	maxBodyBytes = 512

	cl, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()

	// Valid JSON whose in-object whitespace pushes it over the cap, so
	// only the size — not the syntax — can be the rejection cause.
	body := `{"graph":{"kind":"far",` + strings.Repeat(" ", 1024) + `"n":64,"d":4,"eps":0.25}}`
	resp, err := cl.http().Post(cl.Base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d, want 413", resp.StatusCode)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
		t.Fatalf("413 reply lacks the JSON error envelope: %v %+v", err, ae)
	}
}

// TestTTLExpiresFinishedJobs covers the age half of the GC policy: a
// finished job older than JobTTL is collected (from the server and the
// store) by the janitor without any further submissions.
func TestTTLExpiresFinishedJobs(t *testing.T) {
	st := NewMemStore()
	s := New(Config{Workers: 1, JobTTL: 40 * time.Millisecond, Store: st})
	defer s.Close()
	ji, err := s.Submit(farJob(32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, ji.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Job(ji.ID, false); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job not collected after TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, ok := st.GetJob(ji.ID); ok {
		t.Fatal("TTL collection left the store record behind")
	}
}

// TestKeepJobsCollectsOldestFinished pins the count half of the GC
// policy after the single-pass rewrite: oldest finished jobs beyond
// KeepJobs go (from server and store), newest stay, order is preserved.
func TestKeepJobsCollectsOldestFinished(t *testing.T) {
	st := NewMemStore()
	s := New(Config{Workers: 1, KeepJobs: 2, Store: st})
	defer s.Close()
	for i := 1; i <= 5; i++ {
		ji, err := s.Submit(farJob(32, 1, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, ji.ID) // finished ⇒ collectable by the next submit
	}
	list := s.Jobs()
	if len(list) != 2 || list[0].ID != "job-4" || list[1].ID != "job-5" {
		ids := make([]string, len(list))
		for i, ji := range list {
			ids[i] = ji.ID
		}
		t.Fatalf("retained %v, want [job-4 job-5]", ids)
	}
	for i := 1; i <= 3; i++ {
		if _, _, ok := st.GetJob(fmt.Sprintf("job-%d", i)); ok {
			t.Fatalf("collected job-%d still in store", i)
		}
	}
}

// TestStreamSurvivesEviction is the stream-while-evicted regression
// test: a client holding a job's NDJSON stream must read the complete
// result set and final envelope even after the GC policy collects the
// job out from under it.
func TestStreamSurvivesEviction(t *testing.T) {
	s := New(Config{Workers: 1, KeepJobs: 1})
	hs := httptest.NewServer(s.Handler())
	defer func() { hs.Close(); s.Close() }()
	cl := &Client{Base: hs.URL, HTTP: hs.Client()}
	ctx := context.Background()

	ji, err := cl.Submit(ctx, farJob(96, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Open the stream but do not consume it yet.
	resp, err := hs.Client().Get(hs.URL + "/v1/jobs/" + ji.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := cl.Wait(ctx, ji.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Push the finished job out of retention while the stream is open.
	for i := 0; i < 3; i++ {
		ji2, err := cl.Submit(ctx, farJob(32, 1, uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Wait(ctx, ji2.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Job(ctx, ji.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("job not evicted (err=%v); the regression isn't exercised", err)
	}
	// The held stream still yields all 8 trials and the final envelope.
	sc := bufio.NewScanner(resp.Body)
	trials, finals := 0, 0
	for sc.Scan() {
		var probe struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(sc.Bytes(), &probe) == nil && probe.ID != "" {
			finals++
			continue
		}
		trials++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if trials != 8 || finals != 1 {
		t.Fatalf("evicted-job stream delivered %d trials, %d finals; want 8, 1", trials, finals)
	}
}

// TestCloseDuringStreamUnblocks is the Close-during-stream regression
// test: closing the server while a client streams a running job must end
// the stream promptly (no final envelope) instead of leaving the
// handler — and the client — parked forever.
func TestCloseDuringStreamUnblocks(t *testing.T) {
	s := New(Config{Workers: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	cl := &Client{Base: hs.URL, HTTP: hs.Client()}
	ctx := context.Background()

	ji, err := cl.Submit(ctx, farJob(512, 500, 11))
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		opened := false
		_, err := cl.Stream(ctx, ji.ID, func(TrialOutcome) error {
			if !opened {
				opened = true
				close(first)
			}
			return nil
		})
		done <- err
	}()
	select {
	case <-first:
	case <-time.After(30 * time.Second):
		t.Fatal("stream never delivered a trial")
	}
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stream reported a clean final state despite the shutdown")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("stream still blocked 15s after Close")
	}
	// The interrupted job must not be left in the running state.
	ji2, err := s.Job(ji.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if ji2.State == StateRunning {
		t.Fatalf("job state %s after Close", ji2.State)
	}
}
