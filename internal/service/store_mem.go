package service

import (
	"sort"
	"sync"
)

// MemStore is the in-memory Store: the default backend, preserving the
// pre-store behavior where a daemon restart forgets everything.
type MemStore struct {
	mu   sync.Mutex
	recs map[string]*memRec
}

type memRec struct {
	rec    JobRecord
	trials map[int]TrialOutcome
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[string]*memRec)}
}

// PutJob upserts the envelope, keeping any outcomes already recorded.
func (m *MemStore) PutJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.recs[rec.ID]; ok {
		r.rec = rec
		return nil
	}
	m.recs[rec.ID] = &memRec{rec: rec, trials: make(map[int]TrialOutcome)}
	return nil
}

// PutTrial records one outcome; outcomes for unknown jobs are dropped
// (the job line always precedes its trials in normal operation).
func (m *MemStore) PutTrial(id string, out TrialOutcome) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.recs[id]; ok {
		r.trials[out.Trial] = out
	}
	return nil
}

// GetJob returns the envelope and outcomes sorted by trial index.
func (m *MemStore) GetJob(id string) (JobRecord, []TrialOutcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.recs[id]
	if !ok {
		return JobRecord{}, nil, false
	}
	trials := make([]TrialOutcome, 0, len(r.trials))
	for _, out := range r.trials {
		trials = append(trials, out)
	}
	sort.Slice(trials, func(i, j int) bool { return trials[i].Trial < trials[j].Trial })
	return r.rec, trials, true
}

// ListJobs returns the envelopes in ascending Seq order.
func (m *MemStore) ListJobs() []JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobRecord, 0, len(m.recs))
	for _, r := range m.recs {
		out = append(out, r.rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DeleteJob removes the record; unknown ids are a no-op.
func (m *MemStore) DeleteJob(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recs, id)
	return nil
}

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// Describe identifies the backend for health reporting (Describer).
func (m *MemStore) Describe() (backend, path string) { return "mem", "" }
