package service

// The store is the durability layer behind Server. Every submitted job,
// each of its state transitions, and every landed trial outcome is
// written through a Store; at startup the server scans the store,
// rebuilds its in-memory working set, and re-enqueues jobs that were
// queued or mid-run when the previous process died.
//
// Resume is replay: trial i of a job is a pure function of
// TrialSeed(spec.Seed, i) — instance generation, the split, and the
// protocol's shared randomness all derive from it — so the store never
// needs to capture execution state beyond the spec and the outcomes that
// already landed. A resumed job keeps its filled trials verbatim and
// re-runs only the missing ones, producing results byte-identical to an
// uninterrupted run (pinned by TestRestartResumesByteIdentical). The
// same property makes trial-level durability an optimization rather
// than a correctness requirement: an outcome lost to a crash is simply
// recomputed from its seed.

// JobRecord is the persisted envelope of one job: everything except the
// per-trial outcomes, which are stored separately so a record update
// (state transition) never rewrites result data.
type JobRecord struct {
	// ID is the job identifier ("job-<seq>").
	ID string `json:"id"`
	// Seq is the monotone submission sequence number; listing order and
	// the server's ID counter are rebuilt from it at startup.
	Seq int64 `json:"seq"`
	// Spec is the submitted job with defaults filled in. Together with
	// the trial outcomes it is sufficient to resume the job exactly.
	Spec JobSpec `json:"spec"`
	// State is the lifecycle position at the last update.
	State JobState `json:"state"`
	// Error is the failure cause when State is "failed".
	Error string `json:"error,omitempty"`
	// Summary is present once the job is done.
	Summary *Summary `json:"summary,omitempty"`
	// CreatedMS and UpdatedMS are unix-millisecond timestamps of
	// submission and the last update; the TTL/GC policy ages finished
	// jobs by UpdatedMS.
	CreatedMS int64 `json:"created_ms"`
	UpdatedMS int64 `json:"updated_ms"`
}

// Store persists job records and trial outcomes. Implementations must be
// safe for concurrent use. Reads never fail because both shipped
// backends serve them from memory (FileStore replays its log into RAM at
// open); writes report I/O errors so the server can count them.
//
// The server treats the store as the source of truth for what survives a
// restart and owns record lifecycle (the TTL/GC policy deletes through
// DeleteJob); the caller that constructed the store owns its handle and
// must Close it after Server.Close.
type Store interface {
	// PutJob upserts a job's envelope. Called at submission and on every
	// state transition.
	PutJob(rec JobRecord) error
	// PutTrial records one completed trial outcome for a job.
	PutTrial(id string, out TrialOutcome) error
	// GetJob returns a job's envelope and its landed outcomes in trial
	// order, or ok=false if the id is unknown.
	GetJob(id string) (rec JobRecord, trials []TrialOutcome, ok bool)
	// ListJobs returns every stored envelope in ascending Seq order,
	// without trial outcomes.
	ListJobs() []JobRecord
	// DeleteJob removes a job and its outcomes. Deleting an unknown id
	// is a no-op.
	DeleteJob(id string) error
	// Close releases the backend. The server never calls it.
	Close() error
}

// Describer is optionally implemented by stores that can identify their
// backend for health reporting: a short backend name ("mem", "file") and,
// when disk-backed, the database path.
type Describer interface {
	Describe() (backend, path string)
}
