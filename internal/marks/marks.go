// Package marks provides a reusable membership scratch over small integer
// keys — the allocation-free replacement for the throwaway map[int]bool
// sets the hot paths used to build per call.
//
// A Set is a slice of epoch stamps: Reset bumps the epoch instead of
// zeroing the slice, so clearing is O(1) and the backing array is reused
// across calls. Get/Put recycle Sets through a pool, which gives every
// worker goroutine warm scratch without any coordination — the scratch-
// arena contract documented in DESIGN.md ("memory layout").
package marks

import "sync"

// Set is a clearable membership scratch over keys in [0, n). The zero
// value is empty; call Reset before use. Not safe for concurrent use —
// obtain one per goroutine via Get.
type Set struct {
	stamp []uint32
	cur   uint32
}

// Reset prepares the set for keys in [0, n), clearing it in O(1) by
// bumping the epoch (the backing array is only touched when it must grow,
// or once every 2³² resets when the epoch wraps).
func (s *Set) Reset(n int) {
	s.cur++
	if s.cur == 0 {
		// Zero the full capacity, not just the current length: stale
		// stamps beyond len would otherwise survive the wrap and collide
		// with small post-wrap epochs after a later regrow-within-cap.
		full := s.stamp[:cap(s.stamp)]
		for i := range full {
			full[i] = 0
		}
		s.cur = 1
	}
	if n <= cap(s.stamp) {
		s.stamp = s.stamp[:n]
	} else {
		s.stamp = make([]uint32, n)
	}
}

// Has reports whether i was added since the last Reset.
func (s *Set) Has(i int) bool { return s.stamp[i] == s.cur }

// Add marks i as a member.
func (s *Set) Add(i int) { s.stamp[i] = s.cur }

// Len reports the key-range the set was Reset for.
func (s *Set) Len() int { return len(s.stamp) }

var pool = sync.Pool{New: func() any { return new(Set) }}

// Get returns a pooled Set reset for keys in [0, n).
func Get(n int) *Set {
	s := pool.Get().(*Set)
	s.Reset(n)
	return s
}

// Put returns a Set to the pool for reuse. The caller must not use it
// afterwards.
func Put(s *Set) { pool.Put(s) }
