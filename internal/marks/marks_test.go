package marks

import "testing"

func TestSetBasic(t *testing.T) {
	var s Set
	s.Reset(8)
	if s.Has(3) {
		t.Fatal("fresh set has member")
	}
	s.Add(3)
	s.Add(7)
	if !s.Has(3) || !s.Has(7) || s.Has(0) {
		t.Fatal("membership wrong after Add")
	}
	s.Reset(8)
	if s.Has(3) || s.Has(7) {
		t.Fatal("Reset did not clear")
	}
}

func TestSetGrowKeepsClearing(t *testing.T) {
	var s Set
	s.Reset(4)
	s.Add(2)
	s.Reset(16) // grow: new backing array
	for i := 0; i < 16; i++ {
		if s.Has(i) {
			t.Fatalf("grown set has stale member %d", i)
		}
	}
	s.Add(15)
	s.Reset(4) // shrink within capacity
	if s.Has(2) {
		t.Fatal("shrunk set kept stale member")
	}
	s.Reset(16) // regrow within capacity: stale stamp at 15 must not leak
	if s.Has(15) {
		t.Fatal("regrown set resurrected stale member")
	}
}

func TestSetEpochWrap(t *testing.T) {
	s := &Set{stamp: make([]uint32, 4), cur: ^uint32(0) - 1}
	s.Reset(4) // cur becomes ^uint32(0)
	s.Add(1)
	s.Reset(4) // cur wraps to 0 → slice is cleared, cur = 1
	if s.cur != 1 {
		t.Fatalf("cur after wrap = %d, want 1", s.cur)
	}
	for i := 0; i < 4; i++ {
		if s.Has(i) {
			t.Fatalf("post-wrap set has stale member %d", i)
		}
	}
	s.Add(2)
	if !s.Has(2) {
		t.Fatal("post-wrap Add lost")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	s := Get(32)
	s.Add(5)
	if !s.Has(5) {
		t.Fatal("pooled set dropped member")
	}
	Put(s)
	s2 := Get(32)
	if s2.Has(5) {
		t.Fatal("pooled set leaked members across Get")
	}
	Put(s2)
}
