// Command promcheck validates a Prometheus text exposition — from a URL
// or a file — with the in-repo checker (internal/obs.CheckExposition),
// which enforces the structural rules a real scraper relies on: samples
// under declared families, no duplicate series, internally consistent
// histograms.
//
//	promcheck -url http://127.0.0.1:7341/metrics -min-series 25
//	promcheck -f metrics.txt -require tricomm_engine_sessions_total,go_goroutines
//
// Exit status is nonzero when the exposition is malformed, has fewer
// distinct series than -min-series, or is missing any -require family.
// On success it prints "ok: N series, M families".
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"tricomm/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url       = flag.String("url", "", "scrape this URL")
		file      = flag.String("f", "", "read this file (\"-\": stdin)")
		minSeries = flag.Int("min-series", 0, "fail when fewer distinct series are exposed")
		require   = flag.String("require", "", "comma-separated family names that must be present with at least one sample")
	)
	flag.Parse()
	if (*url == "") == (*file == "") {
		return fmt.Errorf("exactly one of -url or -f is required")
	}

	var r io.Reader
	switch {
	case *url != "":
		resp, err := http.Get(*url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", *url, resp.Status)
		}
		r = resp.Body
	case *file == "-":
		r = os.Stdin
	default:
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	e, err := obs.CheckExposition(r)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	if e.Series() < *minSeries {
		return fmt.Errorf("only %d series exposed, want at least %d", e.Series(), *minSeries)
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name != "" && !e.Has(name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("ok: %d series, %d families\n", e.Series(), e.Families())
	return nil
}
