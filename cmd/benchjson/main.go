// Command benchjson measures the repository's core benchmarks — graph
// construction and membership, triangle machinery, and one end-to-end
// protocol session — and emits the results as JSON: ns/op, allocs/op,
// bytes/op, and (where the benchmark meters communication) bits/op.
//
// It exists for the BENCH_N.json perf trajectory: CI runs it with a short
// -benchtime as a smoke artifact, and the numbers committed in
// BENCH_3.json were produced by it (see EXPERIMENTS.md for the
// wall-clock sweep table).
//
// It also compares two of its own reports: `benchjson -compare old.json
// new.json` prints a per-benchmark ns/op delta table and exits non-zero
// when any shared benchmark regressed by more than -max-regress percent —
// the CI guard against silent perf decay between committed BENCH_N.json
// baselines.
//
// Examples:
//
//	benchjson                     # ~1s per benchmark, JSON on stdout
//	benchjson -benchtime 100x     # fixed iteration count (CI smoke)
//	benchjson -o BENCH.json       # write to a file
//	benchjson -compare -max-regress 20 BENCH_9.json BENCH_10.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	tricomm "tricomm"
	"tricomm/internal/bitset"
	"tricomm/internal/graph"
	"tricomm/internal/parwork"
	"tricomm/internal/scenario"
)

// Result is one benchmark's measurement.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
	BitsOp   float64 `json:"bits_op,omitempty"`
	N        int     `json:"iterations"`
}

// Report is the emitted document.
type Report struct {
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out        = flag.String("o", "", "output path (default stdout)")
		benchtime  = flag.String("benchtime", "1s", "per-benchmark budget (duration or Nx count)")
		zeroAlloc  = flag.String("assert-zero-alloc", "", "comma-separated benchmark names whose allocs_op must be 0 (exit 1 otherwise)")
		compare    = flag.Bool("compare", false, "compare two reports: benchjson -compare old.json new.json (runs nothing)")
		maxRegress = flag.Float64("max-regress", 20, "with -compare: exit 1 when any shared benchmark's ns/op grew by more than this percent")
	)
	testing.Init()
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two report paths, got %d", flag.NArg())
		}
		return compareReports(flag.Arg(0), flag.Arg(1), *maxRegress)
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}

	mustZero := map[string]bool{}
	if *zeroAlloc != "" {
		for _, name := range strings.Split(*zeroAlloc, ",") {
			mustZero[strings.TrimSpace(name)] = true
		}
	}

	rep := Report{
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
	}
	var zeroAllocErr error
	for _, bench := range coreBenchmarks() {
		r := testing.Benchmark(bench.fn)
		res := Result{
			Name:     bench.name,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
			N:        r.N,
		}
		if bits, ok := r.Extra["bits/op"]; ok {
			res.BitsOp = bits
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%-28s %12.1f ns/op %8d allocs/op\n",
			bench.name, res.NsPerOp, res.AllocsOp)
		if mustZero[bench.name] {
			delete(mustZero, bench.name)
			if res.AllocsOp != 0 && zeroAllocErr == nil {
				zeroAllocErr = fmt.Errorf("%s allocates: %d allocs/op (want 0)",
					bench.name, res.AllocsOp)
			}
		}
	}
	if zeroAllocErr == nil && len(mustZero) > 0 {
		for name := range mustZero {
			zeroAllocErr = fmt.Errorf("-assert-zero-alloc names unknown benchmark %q", name)
			break
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return zeroAllocErr
}

// compareReports prints a per-benchmark ns/op delta table between two
// benchjson reports and returns an error when any benchmark present in
// both regressed by more than maxRegress percent. Benchmarks present in
// only one report are listed but never fail the comparison, so baselines
// may gain or retire benchmarks without churn.
func compareReports(oldPath, newPath string, maxRegress float64) error {
	load := func(path string) (*Report, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r Report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &r, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	fmt.Printf("%-32s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressed []string
	seen := make(map[string]bool, len(newRep.Results))
	for _, nr := range newRep.Results {
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-32s %14s %14.1f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			regressed = append(regressed, nr.Name)
		}
		fmt.Printf("%-32s %14.1f %14.1f %+8.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta, mark)
	}
	for _, or := range oldRep.Results {
		if !seen[or.Name] {
			fmt.Printf("%-32s %14.1f %14s %9s\n", or.Name, or.NsPerOp, "-", "gone")
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), maxRegress, strings.Join(regressed, ", "))
	}
	return nil
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// foldBody is the parwork/fold benchmark's scan body, hoisted to package
// level so the timed loop carries no closure construction.
var foldBody = func(lo, hi int) int64 {
	var s int64
	for i := lo; i < hi; i++ {
		s += int64(i & 7)
	}
	return s
}

// scenarioBench measures one scenario family's generation hot path at its
// default parameters (the same specs the registry-driven benchmarks in
// internal/scenario track with ReportAllocs).
func scenarioBench(family string) func(b *testing.B) {
	return func(b *testing.B) {
		sp, err := scenario.Parse(family)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rng.Seed(int64(i))
			if _, err := scenario.Build(sp, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// denseSessionBench measures one full interactive session on a dense
// ε-far instance at the given intra-phase worker width. The w1/w8 pair
// is the single-session speedup the BENCH trajectory tracks: the reports
// are bit-identical at every width, so any ns/op gap is pure wall-clock.
func denseSessionBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		g, _ := tricomm.FarGraph(512, 16, 0.2, 9)
		cluster, err := tricomm.Split(g, 8, tricomm.SplitDisjoint, 9)
		if err != nil {
			b.Fatal(err)
		}
		s, err := cluster.Session(tricomm.Options{
			Protocol: tricomm.Interactive, Eps: 0.2, AvgDegree: 16,
			IntraWorkers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		var bits int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, terr := s.Test(ctx)
			if terr != nil {
				b.Fatal(terr)
			}
			bits += rep.Bits
		}
		b.ReportMetric(float64(bits)/float64(b.N), "bits/op")
	}
}

// coreBenchmarks mirrors the hot-path benchmarks in internal/graph and the
// facade: the CSR construction and membership paths the perf trajectory
// tracks, plus one metered protocol session for bits/op.
func coreBenchmarks() []namedBench {
	return []namedBench{
		{"graph/build", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			edges := graph.ErdosRenyi(4096, 0.004, rng).Edges()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.FromEdges(4096, edges)
			}
		}},
		{"graph/has-edge", func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			g := graph.ErdosRenyi(10000, 0.001, rng)
			const q = 1 << 12
			us := make([]int32, q)
			vs := make([]int32, q)
			for i := range us {
				us[i] = int32(i * 131 % 10000)
				vs[i] = int32((i*7 + 1) % 10000)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.HasEdge(int(us[i%q]), int(vs[i%q]))
			}
		}},
		{"graph/has-edge-dense", func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			g := graph.ErdosRenyi(2048, 0.05, rng)
			const q = 1 << 12
			us := make([]int32, q)
			vs := make([]int32, q)
			for i := range us {
				us[i] = int32(i * 131 % 2048)
				vs[i] = int32((i*7 + 1) % 2048)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.HasEdge(int(us[i%q]), int(vs[i%q]))
			}
		}},
		{"graph/count-triangles", func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g := graph.ErdosRenyi(2048, 0.01, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CountTriangles()
			}
		}},
		{"graph/pack-triangles", func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			g := graph.FarWithDegree(graph.FarParams{N: 2048, D: 16, Eps: 0.2}, rng).G
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.PackTriangles()
			}
		}},
		{"graph/disjoint-vees", func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			g := graph.FarWithDegree(graph.FarParams{N: 2048, D: 16, Eps: 0.2}, rng).G
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for v := 0; v < g.N(); v++ {
					total += g.DisjointVeeCountAt(v)
				}
				if total == 0 {
					b.Fatal("no vees found")
				}
			}
		}},
		{"graph/far-with-degree", func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph.FarWithDegree(graph.FarParams{N: 4096, D: 8, Eps: 0.2}, rng)
			}
		}},
		{"bitset/intersect-count", func(b *testing.B) {
			// Mirrors internal/bitset BenchmarkIntersectCount: 32-word rows
			// (a 2048-vertex shadow) at density 0.3.
			rng := rand.New(rand.NewSource(11))
			row := func() []uint64 {
				r := make([]uint64, 32)
				for k := 0; k < 32*64; k++ {
					if rng.Float64() < 0.3 {
						bitset.Mark(r, k)
					}
				}
				return r
			}
			x, y := row(), row()
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += bitset.IntersectCount(x, y)
			}
			_ = sink
		}},
		{"bitset/intersect-count-wide", func(b *testing.B) {
			// 128-word rows (an 8192-vertex shadow): the 8-word unrolled
			// fast path, mirroring internal/bitset BenchmarkIntersectCountWide.
			rng := rand.New(rand.NewSource(13))
			row := func() []uint64 {
				r := make([]uint64, 128)
				for k := 0; k < 128*64; k++ {
					if rng.Float64() < 0.3 {
						bitset.Mark(r, k)
					}
				}
				return r
			}
			x, y := row(), row()
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += bitset.IntersectCount(x, y)
			}
			_ = sink
		}},
		{"parwork/fold", func(b *testing.B) {
			// The ordered-fold work-splitting engine at 8 workers over a
			// 64k-element scan, mirroring internal/parwork BenchmarkFoldInt64.
			// The body closure is hoisted so the timed loop exercises only
			// the fold machinery, which must stay allocation-free. One warm-up
			// call spawns the persistent helper goroutines and primes the job
			// pool outside the timer, so short -benchtime runs don't smear
			// that one-time cost across a handful of iterations.
			parwork.FoldInt64(8, 1<<16, foldBody)
			b.ReportAllocs()
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += parwork.FoldInt64(8, 1<<16, foldBody)
			}
			_ = sink
		}},
		{"graph/count-triangles-dense", func(b *testing.B) {
			rng := rand.New(rand.NewSource(21))
			g := graph.ErdosRenyi(2048, 0.05, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CountTriangles()
			}
		}},
		{"graph/count-triangles-par", func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g := graph.ErdosRenyi(2048, 0.01, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CountTrianglesN(4)
			}
		}},
		{"graph/has-edge-batch", func(b *testing.B) {
			rng := rand.New(rand.NewSource(22))
			g := graph.ErdosRenyi(2048, 0.05, rng)
			const q = 256
			vs := make([]int32, q)
			for i := range vs {
				vs[i] = int32(i * 8 % 2048)
			}
			for i := 1; i < len(vs); i++ {
				for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
					vs[j], vs[j-1] = vs[j-1], vs[j]
				}
			}
			out := make([]bool, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.HasEdgeBatch(i%2048, vs, out)
			}
		}},
		{"scenario/chung-lu", scenarioBench("chung-lu")},
		{"scenario/sbm", scenarioBench("sbm")},
		{"scenario/behrend-blowup", scenarioBench("behrend-blowup")},
		{"scenario/dup-adversary", scenarioBench("dup-adversary")},
		{"protocol/simlow-session", func(b *testing.B) {
			g, _ := tricomm.FarGraph(4096, 8, 0.2, 3)
			cluster, err := tricomm.Split(g, 8, tricomm.SplitDisjoint, 5)
			if err != nil {
				b.Fatal(err)
			}
			s, err := cluster.Session(tricomm.Options{
				Protocol: tricomm.SimultaneousLow, Eps: 0.2, AvgDegree: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var bits int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, terr := s.Test(ctx)
				if terr != nil {
					b.Fatal(terr)
				}
				bits += rep.Bits
			}
			b.ReportMetric(float64(bits)/float64(b.N), "bits/op")
		}},
		{"protocol/unrestricted", func(b *testing.B) {
			g, _ := tricomm.FarGraph(512, 8, 0.2, 11)
			cluster, err := tricomm.Split(g, 4, tricomm.SplitDisjoint, 11)
			if err != nil {
				b.Fatal(err)
			}
			s, err := cluster.Session(tricomm.Options{
				Protocol: tricomm.Interactive, Eps: 0.2, AvgDegree: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var bits int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, terr := s.Test(ctx)
				if terr != nil {
					b.Fatal(terr)
				}
				bits += rep.Bits
			}
			b.ReportMetric(float64(bits)/float64(b.N), "bits/op")
		}},
		{"protocol/unrestricted-dense-w1", denseSessionBench(1)},
		{"protocol/unrestricted-dense-w8", denseSessionBench(8)},
		{"protocol/exact-baseline", func(b *testing.B) {
			g, _ := tricomm.FarGraph(1024, 8, 0.2, 17)
			cluster, err := tricomm.Split(g, 4, tricomm.SplitDisjoint, 17)
			if err != nil {
				b.Fatal(err)
			}
			s, err := cluster.Session(tricomm.Options{Protocol: tricomm.Exact})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var bits int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, terr := s.Test(ctx)
				if terr != nil {
					b.Fatal(terr)
				}
				bits += rep.Bits
			}
			b.ReportMetric(float64(bits)/float64(b.N), "bits/op")
		}},
	}
}
