package main

import (
	"testing"

	"tricomm"
)

func TestParseScheme(t *testing.T) {
	cases := map[string]tricomm.SplitScheme{
		"disjoint":  tricomm.SplitDisjoint,
		"duplicate": tricomm.SplitDuplicate,
		"byvertex":  tricomm.SplitByVertex,
		"all":       tricomm.SplitAll,
	}
	for in, want := range cases {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Errorf("parseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestParseProtocol(t *testing.T) {
	cases := map[string]tricomm.Protocol{
		"interactive":   tricomm.Interactive,
		"blackboard":    tricomm.InteractiveBlackboard,
		"sim-low":       tricomm.SimultaneousLow,
		"sim-high":      tricomm.SimultaneousHigh,
		"sim-oblivious": tricomm.SimultaneousOblivious,
		"auto":          tricomm.SimultaneousOblivious,
		"exact":         tricomm.Exact,
	}
	for in, want := range cases {
		got, err := parseProtocol(in)
		if err != nil || got != want {
			t.Errorf("parseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProtocol("bogus"); err == nil {
		t.Error("bogus protocol accepted")
	}
}
