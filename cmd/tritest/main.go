// Command tritest generates a graph, splits it among k players, runs one
// of the triangle-freeness protocols, and prints the verdict and exact
// communication cost. With -check (the default) it also compares the
// verdict against the instance's ground truth and exits non-zero, printing
// the failing seed, on disagreement — which makes it a scripted health
// check. With -server it submits the same job to a running tricommd daemon
// and audits the daemon's verdicts instead, regenerating each trial's
// instance locally from the reported per-trial seed.
//
// Instances come from the scenario registry: -scenario accepts any
// registered family name or a JSON spec (-list-scenarios prints the
// catalog), while the legacy -kind/-n/-d/-eps flags keep working and are
// routed through the same registry.
//
// Examples:
//
//	tritest -n 2048 -d 8 -eps 0.2 -k 8 -protocol sim-oblivious
//	tritest -scenario chung-lu -protocol interactive -partition duplicate
//	tritest -scenario '{"family":"behrend-blowup","m":16,"blowup":4}' -protocol exact
//	tritest -server http://127.0.0.1:7341 -scenario dup-adversary -trials 5
//
// Health-check semantics: a witness that is not a real triangle of the
// instance is always a hard failure (soundness is unconditional). A missed
// triangle is a failure too — for certified-far scenarios the construction
// guarantees ε-farness, where the protocols succeed with high probability,
// so use a certified family (or -protocol exact, which never misses) for
// scripted checks; on instances close to triangle-free a miss can be a
// legitimate tester outcome rather than a daemon fault.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"tricomm"
	"tricomm/internal/harness/runner"
	"tricomm/internal/scenario"
	"tricomm/internal/service"
	"tricomm/internal/transport"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tritest: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run returns the process exit code: 0 for healthy, 2 for a ground-truth
// disagreement, 1 (with an error) for operational failures.
func run() (int, error) {
	var (
		n        = flag.Int("n", 1024, "number of vertices")
		d        = flag.Float64("d", 8, "target average degree")
		eps      = flag.Float64("eps", 0.2, "farness parameter")
		k        = flag.Int("k", 4, "number of players")
		kind     = flag.String("kind", "far", "legacy graph kind: far | random | bipartite (see -scenario for the full catalog)")
		scen     = flag.String("scenario", "", "scenario: a registry family name or JSON spec; overrides -kind/-n/-d/-eps")
		listScen = flag.Bool("list-scenarios", false, "print the scenario catalog and exit")
		proto    = flag.String("protocol", "sim-oblivious", "protocol: "+strings.Join(tricomm.ProtocolNames(), " | "))
		part     = flag.String("partition", "disjoint", "partition: "+strings.Join(tricomm.SplitSchemeNames(), " | "))
		transp   = flag.String("transport", "chan", "session transport: "+strings.Join(tricomm.TransportNames(), " | "))
		seed     = flag.Int64("seed", 1, "random seed")
		knownDeg = flag.Bool("known-degree", true, "tell the protocol the true average degree")
		check    = flag.Bool("check", true, "compare the verdict against ground truth; exit 2 with the failing seed on disagreement")
		trials   = flag.Int("trials", 1, "trials (server mode)")
		server   = flag.String("server", "", "audit a running tricommd at this base URL instead of running locally")
		faults   = flag.String("faults", "", "deterministic fault injection: off | lossy | chaos | JSON fault spec")
		intraW   = flag.Int("intra-workers", 0, "goroutines for the session's per-player hot loops and the ground-truth triangle search (<= 0: $TRICOMM_INTRA_WORKERS, then 1); reports are identical at any value")
	)
	flag.Parse()
	intraWorkers = tricomm.IntraWorkers(*intraW)

	if *listScen {
		fmt.Print(tricomm.ScenarioUsage())
		return 0, nil
	}
	if _, err := parseScheme(*part); err != nil {
		return 1, err
	}
	if _, err := parseProtocol(*proto); err != nil {
		return 1, err
	}
	if _, err := tricomm.ParseTransport(*transp); err != nil {
		return 1, err
	}
	if _, err := transport.ParseFaultSpec(*faults); err != nil {
		return 1, err
	}
	spec, err := resolveSpec(*scen, *kind, *n, *d, *eps)
	if err != nil {
		return 1, err
	}

	if *server != "" {
		return runServer(serverJob{
			base: *server, spec: spec, k: *k, eps: *eps,
			proto: *proto, part: *part, transport: *transp, faults: *faults,
			seed: uint64(*seed), trials: *trials, knownDeg: *knownDeg, check: *check,
		})
	}
	return runLocal(spec, *eps, *k, *proto, *part, *transp, *faults, *seed, *knownDeg, *check)
}

// resolveSpec turns either a -scenario argument or the legacy
// -kind/-n/-d/-eps flags into one canonical scenario spec — the same
// construction the daemon uses, so server-mode audits can regenerate any
// trial.
func resolveSpec(scen, kind string, n int, d, eps float64) (scenario.Spec, error) {
	if scen != "" {
		return scenario.Parse(scen)
	}
	sp := scenario.Spec{Family: kind, N: n, D: d}
	if kind == "far" {
		sp.Eps = eps
	}
	return scenario.Canonical(sp)
}

// intraWorkers is the resolved -intra-workers value: goroutines for the
// ground-truth triangle search (deterministic at any width).
var intraWorkers = 1

// audit compares one verdict against the instance's ground truth. It
// returns a non-empty failure description on disagreement.
func audit(g *tricomm.Graph, triangleFree bool, witness *tricomm.Triangle, seed int64) string {
	if !triangleFree {
		if witness == nil {
			return fmt.Sprintf("UNSOUND: triangle reported without a witness (seed=%d)", seed)
		}
		w := *witness
		if w.A == w.B || w.B == w.C || w.A == w.C ||
			!g.HasEdge(w.A, w.B) || !g.HasEdge(w.B, w.C) || !g.HasEdge(w.A, w.C) {
			return fmt.Sprintf("UNSOUND: witness %v is not a triangle of the instance (seed=%d)", w, seed)
		}
	}
	_, hasTriangle := g.FindTriangleN(intraWorkers)
	if triangleFree && hasTriangle {
		return fmt.Sprintf("MISS: verdict triangle-free but the instance has a triangle (seed=%d)", seed)
	}
	if !triangleFree && !hasTriangle {
		// Unreachable given the soundness check above, but state it.
		return fmt.Sprintf("UNSOUND: triangle reported on a triangle-free instance (seed=%d)", seed)
	}
	return ""
}

func runLocal(spec scenario.Spec, eps float64, k int, proto, part, transp, faults string, seed int64, knownDeg, check bool) (int, error) {
	si, err := tricomm.GenerateScenario(spec.JSON(), seed)
	if err != nil {
		return 1, err
	}
	g := si.Graph
	scheme, _ := parseScheme(part)
	protocol, _ := parseProtocol(proto)
	transport, _ := tricomm.ParseTransport(transp)

	cluster, err := si.Cluster(k, scheme, uint64(seed))
	if err != nil {
		return 1, err
	}
	opts := tricomm.Options{Protocol: protocol, Eps: eps, Transport: transport, Faults: faults, IntraWorkers: intraWorkers}
	if knownDeg {
		opts.AvgDegree = g.AvgDegree()
	}

	fmt.Printf("graph: n=%d m=%d avg-degree=%.2f scenario=%s", g.N(), g.M(), g.AvgDegree(), spec.Family)
	if si.CertEps > 0 {
		fmt.Printf(" certified-eps=%.3f", si.CertEps)
	}
	if si.TriangleFree {
		fmt.Printf(" triangle-free-by-construction")
	}
	if si.Players != nil {
		fmt.Printf("\nplayers: k=%d assignment=scenario-prescribed transport=%s\n", len(si.Players), transp)
	} else {
		fmt.Printf("\nplayers: k=%d partition=%s transport=%s\n", k, part, transp)
	}

	rep, err := cluster.Test(context.Background(), opts)
	if err != nil {
		return 1, err
	}
	fmt.Printf("protocol: %s\n", rep.Protocol)
	if rep.TriangleFree {
		fmt.Println("verdict: triangle-free (one-sided; may err only on ε-far inputs)")
	} else {
		fmt.Printf("verdict: found triangle %v\n", rep.Witness)
	}
	fmt.Printf("communication: %d bits total, %d rounds", rep.Bits, rep.Rounds)
	if rep.WireBytes > 0 {
		fmt.Printf(", %d wire bytes", rep.WireBytes)
	}
	if rep.Retransmits > 0 || rep.FramesLost > 0 {
		fmt.Printf(" (faults: %d frames lost, %d retransmits)", rep.FramesLost, rep.Retransmits)
	}
	fmt.Println()
	for j, b := range rep.PerPlayerBits {
		fmt.Printf("  player %d: %d bits\n", j, b)
	}
	if check {
		w := rep.Witness
		if msg := audit(g, rep.TriangleFree, &w, seed); msg != "" {
			fmt.Fprintf(os.Stderr, "tritest: FAIL %s\n", msg)
			return 2, nil
		}
		fmt.Println("check: verdict agrees with ground truth")
	}
	return 0, nil
}

type serverJob struct {
	base            string
	spec            scenario.Spec
	eps             float64
	k, trials       int
	proto, part     string
	transport       string
	faults          string
	seed            uint64
	knownDeg, check bool
}

// runServer submits the job to a tricommd daemon and audits every trial
// outcome against a locally regenerated instance.
func runServer(j serverJob) (int, error) {
	ctx := context.Background()
	cl := &service.Client{Base: j.base}
	if err := cl.Health(ctx); err != nil {
		return 1, fmt.Errorf("daemon unhealthy: %w", err)
	}
	ji, err := cl.Submit(ctx, service.JobSpec{
		Graph:       service.GraphSpec{Spec: j.spec},
		K:           j.k,
		Partition:   j.part,
		Protocol:    j.proto,
		Eps:         j.eps,
		KnownDegree: j.knownDeg,
		Trials:      j.trials,
		Transport:   j.transport,
		Seed:        j.seed,
		Faults:      j.faults,
	})
	if err != nil {
		return 1, err
	}
	fmt.Printf("daemon %s: job %s (%s, %d trials)\n", j.base, ji.ID, j.proto, j.trials)

	// The daemon echoes the spec with defaults filled in; derive expected
	// trial seeds from that echo so defaulting (e.g. seed 0 → 1) cannot be
	// mistaken for drift.
	baseSeed := ji.Spec.Seed

	failures, aborted := 0, 0
	fin, err := cl.Stream(ctx, ji.ID, func(o service.TrialOutcome) error {
		if o.Aborted {
			// An aborted trial carries no verdict to audit; the session
			// failed typed instead of returning anything unsound.
			aborted++
			fmt.Printf("trial %d seed=%d: aborted after %d retries: %s\n",
				o.Trial, o.Seed, o.Retries, o.Error)
			return nil
		}
		verdict := "triangle-free"
		if !o.TriangleFree {
			if o.Witness != nil {
				verdict = fmt.Sprintf("found-triangle %v", *o.Witness)
			} else {
				verdict = "found-triangle (no witness!)"
			}
		}
		fmt.Printf("trial %d seed=%d: %s  bits=%d rounds=%d\n", o.Trial, o.Seed, verdict, o.Bits, o.Rounds)
		if !j.check {
			return nil
		}
		if o.Seed != runner.TrialSeed(baseSeed, o.Trial) {
			failures++
			fmt.Fprintf(os.Stderr, "tritest: FAIL trial %d reports seed %d, expected %d — daemon seed derivation drifted\n",
				o.Trial, o.Seed, runner.TrialSeed(baseSeed, o.Trial))
			return nil
		}
		si, err := tricomm.GenerateScenario(j.spec.JSON(), int64(o.Seed))
		if err != nil {
			return err
		}
		var w *tricomm.Triangle
		if o.Witness != nil {
			w = &tricomm.Triangle{A: o.Witness[0], B: o.Witness[1], C: o.Witness[2]}
		}
		if msg := audit(si.Graph, o.TriangleFree, w, int64(o.Seed)); msg != "" {
			failures++
			fmt.Fprintf(os.Stderr, "tritest: FAIL trial %d %s\n", o.Trial, msg)
		}
		return nil
	})
	if err != nil {
		return 1, err
	}
	switch fin.State {
	case service.StateDone:
	case service.StatePartial:
		// Within the job's aborted-trial budget: the completed trials'
		// verdicts are valid (and audited above); say what's missing.
		fmt.Printf("note: job %s partial — %d of %d trials aborted under faults\n",
			fin.ID, aborted, j.trials)
	default:
		return 1, fmt.Errorf("job %s finished %s: %s", fin.ID, fin.State, fin.Error)
	}
	if failures > 0 {
		return 2, fmt.Errorf("%d of %d trials disagree with ground truth", failures, j.trials)
	}
	if j.check {
		fmt.Printf("check: all %d completed trials agree with ground truth\n", j.trials-aborted)
	}
	return 0, nil
}

func parseScheme(s string) (tricomm.SplitScheme, error) {
	return tricomm.ParseSplitScheme(s)
}

func parseProtocol(s string) (tricomm.Protocol, error) {
	if s == "" {
		return 0, fmt.Errorf("unknown -protocol %q (valid: %s)", s, strings.Join(tricomm.ProtocolNames(), ", "))
	}
	return tricomm.ParseProtocol(s)
}
