// Command tritest generates a graph, splits it among k players, runs one
// of the triangle-freeness protocols, and prints the verdict and exact
// communication cost.
//
// Examples:
//
//	tritest -n 2048 -d 8 -eps 0.2 -k 8 -protocol sim-oblivious
//	tritest -n 1024 -d 64 -k 4 -protocol interactive -partition duplicate
//	tritest -n 512 -kind bipartite -protocol exact
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tricomm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tritest: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1024, "number of vertices")
		d        = flag.Float64("d", 8, "target average degree")
		eps      = flag.Float64("eps", 0.2, "farness parameter")
		k        = flag.Int("k", 4, "number of players")
		kind     = flag.String("kind", "far", "graph kind: far | random | bipartite")
		proto    = flag.String("protocol", "sim-oblivious", "protocol: interactive | blackboard | sim-low | sim-high | sim-oblivious | exact")
		part     = flag.String("partition", "disjoint", "partition: disjoint | duplicate | byvertex | all")
		seed     = flag.Int64("seed", 1, "random seed")
		knownDeg = flag.Bool("known-degree", true, "tell the protocol the true average degree")
	)
	flag.Parse()

	var g *tricomm.Graph
	var certEps float64
	switch *kind {
	case "far":
		g, certEps = tricomm.FarGraph(*n, *d, *eps, *seed)
	case "random":
		g = tricomm.RandomGraph(*n, *d, *seed)
	case "bipartite":
		g = tricomm.BipartiteGraph(*n, *d, *seed)
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}

	scheme, err := parseScheme(*part)
	if err != nil {
		return err
	}
	protocol, err := parseProtocol(*proto)
	if err != nil {
		return err
	}

	cluster, err := tricomm.Split(g, *k, scheme, uint64(*seed))
	if err != nil {
		return err
	}

	opts := tricomm.Options{Protocol: protocol, Eps: *eps}
	if *knownDeg {
		opts.AvgDegree = g.AvgDegree()
	}

	fmt.Printf("graph: n=%d m=%d avg-degree=%.2f kind=%s", g.N(), g.M(), g.AvgDegree(), *kind)
	if certEps > 0 {
		fmt.Printf(" certified-eps=%.3f", certEps)
	}
	fmt.Printf("\nplayers: k=%d partition=%s\n", *k, *part)

	rep, err := cluster.Test(context.Background(), opts)
	if err != nil {
		return err
	}
	fmt.Printf("protocol: %s\n", rep.Protocol)
	if rep.TriangleFree {
		fmt.Println("verdict: triangle-free (one-sided; may err only on ε-far inputs)")
	} else {
		fmt.Printf("verdict: found triangle %v\n", rep.Witness)
	}
	fmt.Printf("communication: %d bits total, %d rounds\n", rep.Bits, rep.Rounds)
	for j, b := range rep.PerPlayerBits {
		fmt.Printf("  player %d: %d bits\n", j, b)
	}
	return nil
}

func parseScheme(s string) (tricomm.SplitScheme, error) {
	switch s {
	case "disjoint":
		return tricomm.SplitDisjoint, nil
	case "duplicate":
		return tricomm.SplitDuplicate, nil
	case "byvertex":
		return tricomm.SplitByVertex, nil
	case "all":
		return tricomm.SplitAll, nil
	default:
		return 0, fmt.Errorf("unknown -partition %q", s)
	}
}

func parseProtocol(s string) (tricomm.Protocol, error) {
	switch s {
	case "interactive":
		return tricomm.Interactive, nil
	case "blackboard":
		return tricomm.InteractiveBlackboard, nil
	case "sim-low":
		return tricomm.SimultaneousLow, nil
	case "sim-high":
		return tricomm.SimultaneousHigh, nil
	case "sim-oblivious", "auto":
		return tricomm.SimultaneousOblivious, nil
	case "exact":
		return tricomm.Exact, nil
	default:
		return 0, fmt.Errorf("unknown -protocol %q", s)
	}
}
