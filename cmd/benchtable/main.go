// Command benchtable regenerates the paper-reproduction experiments
// (DESIGN.md §4 maps each experiment id to a row of the paper's Table 1
// or an in-text claim) and prints the measured tables.
//
// Trials fan out over a worker pool (-jobs, default GOMAXPROCS) and
// independent experiments can run concurrently (-parallel); tables are
// bit-identical at every -jobs/-parallel value because every trial's
// randomness is a pure function of (seed, trial index) and results are
// folded in trial order (see internal/harness/runner). Timings go to
// stderr so stdout stays byte-deterministic. SIGINT cancels the worker
// pools and exits after they drain.
//
// Examples:
//
//	benchtable                  # full sweep, all cores
//	benchtable -quick           # reduced sweep
//	benchtable -jobs 1          # sequential trials (same bytes, slower)
//	benchtable -only E3,E4      # just the probe experiments
//	benchtable -csv results/    # also dump CSVs
//	benchtable -json            # JSON array of tables on stdout
//
// Scenario mode runs a single declarative instance spec instead of the
// registered experiments — any family from the scenario registry
// (-list-scenarios prints the catalog), with per-trial rows that are
// seed-exact with tricomm.RunScenario and tricommd jobs:
//
//	benchtable -scenario chung-lu -trials 5
//	benchtable -scenario '{"family":"sbm","n":2048,"blocks":16}' -protocol interactive
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"tricomm"
	"tricomm/internal/harness"
	"tricomm/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchtable: %v\n", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		quick    = flag.Bool("quick", false, "reduced sweeps")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSVs")
		trials   = flag.Int("trials", 0, "override per-point trial count")
		jobs     = flag.Int("jobs", 0, "trial worker count (<= 0: GOMAXPROCS); tables are identical at any value")
		intraW   = flag.Int("intra-workers", 0, "goroutines per trial for the parallel graph kernels (<= 0: $TRICOMM_INTRA_WORKERS, then 1); tables are identical at any value")
		parallel = flag.Int("parallel", 1, "experiments to run concurrently (output order is preserved; each carries its own -jobs pool, so in-flight trials ≈ jobs×parallel)")
		jsonOut  = flag.Bool("json", false, "emit a JSON array of tables on stdout instead of text")
		scen     = flag.String("scenario", "", "run one scenario (a registry family name or JSON spec) instead of the experiments")
		listScen = flag.Bool("list-scenarios", false, "print the scenario catalog and exit")
		k        = flag.Int("k", 4, "players (scenario mode)")
		eps      = flag.Float64("eps", 0.2, "tester farness target (scenario mode)")
		part     = flag.String("partition", "disjoint", "partition (scenario mode): "+strings.Join(tricomm.SplitSchemeNames(), " | "))
		proto    = flag.String("protocol", "sim-oblivious", "protocol (scenario mode): "+strings.Join(tricomm.ProtocolNames(), " | "))
		transp   = flag.String("transport", "chan", "session transport (scenario mode): "+strings.Join(tricomm.TransportNames(), " | "))
		check    = flag.Bool("check", false, "audit every trial against ground truth (scenario mode): witnesses must be genuine triangles, misses are reported in a note")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		metrics  = flag.String("metrics", "", "write the run's metrics (Prometheus text exposition) to this file at exit; tables on stdout are unaffected")
	)
	flag.Parse()

	if *listScen {
		fmt.Print(tricomm.ScenarioUsage())
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *metrics != "" {
		// Metrics are observed effects only — the tables on stdout are
		// byte-identical with or without this flag (CI pins that).
		obs.RegisterRuntime()
		defer func() {
			if err := writeMetrics(*metrics); err != nil {
				fmt.Fprintf(os.Stderr, "benchtable: metrics: %v\n", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtable: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-object stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtable: memprofile: %v\n", err)
			}
		}()
	}

	cfg := harness.RunConfig{Seed: *seed, Quick: *quick, Trials: *trials, Jobs: *jobs,
		IntraWorkers: *intraW}

	if *scen != "" {
		trials := cfg.Trials
		if trials <= 0 {
			trials = 3
		}
		table, err := harness.ScenarioTable(ctx, cfg, harness.ScenarioConfig{
			Spec: *scen, K: *k, Scheme: *part, Protocol: *proto, Transport: *transp,
			Eps: *eps, KnownDegree: true, Check: *check,
		}, trials)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode([]*harness.Table{table})
		}
		return table.Render(os.Stdout)
	}

	var selected []harness.Experiment
	if *only == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			exp, ok := harness.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, exp)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// Experiment-level concurrency: up to -parallel experiments run at
	// once, each fanning its trials over -jobs workers. Results are
	// collected and emitted in selection order regardless of completion
	// order. A genuine failure cancels everything still in flight from
	// the worker that saw it (not from the in-order collector, which may
	// be blocked on an earlier slow experiment for minutes).
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()
	width := *parallel
	if width < 1 {
		width = 1
	}
	type outcome struct {
		table *harness.Table
		took  time.Duration
		err   error
	}
	results := make([]chan outcome, len(selected))
	for i := range selected {
		results[i] = make(chan outcome, 1)
	}
	var (
		errOnce  sync.Once
		firstErr error // the first genuine (non-cancellation) failure
	)
	fail := func(id string, err error) {
		errOnce.Do(func() {
			firstErr = fmt.Errorf("%s: %w", id, err)
			cancel()
		})
	}
	// Workers pull indices from a queue fed in selection order, so with
	// -parallel 1 experiments start (and stream) strictly in order rather
	// than racing for a semaphore.
	queue := make(chan int)
	go func() {
		defer close(queue)
		for i := range selected {
			queue <- i
		}
	}()
	for w := 0; w < width; w++ {
		go func() {
			for i := range queue {
				if err := ectx.Err(); err != nil {
					results[i] <- outcome{err: err}
					continue
				}
				start := time.Now()
				table, err := selected[i].Run(ectx, cfg)
				// Errors observed after ectx was canceled are unwinding
				// noise (SIGINT or a sibling's failure), not diagnoses.
				if err != nil && ectx.Err() == nil {
					fail(selected[i].ID, err)
				}
				results[i] <- outcome{table: table, took: time.Since(start), err: err}
			}
		}()
	}

	var tables []*harness.Table
	sawErr := false
	for i, exp := range selected {
		o := <-results[i]
		if o.err != nil {
			sawErr = true
			continue
		}
		if sawErr {
			continue // keep the emitted output a clean prefix
		}
		o.table.ID = exp.ID
		o.table.Title = exp.Title
		o.table.PaperClaim = exp.PaperClaim
		if *jsonOut {
			tables = append(tables, o.table)
		} else if err := o.table.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "(%s took %v)\n", exp.ID, o.took.Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, exp.ID+".csv"), o.table); err != nil {
				return err
			}
		}
	}
	// All results are in, so every fail() call happened-before here.
	if firstErr != nil {
		return firstErr
	}
	if sawErr {
		// Only cancellation-shaped outcomes remain: the run was
		// interrupted (SIGINT/SIGTERM), not broken.
		return fmt.Errorf("interrupted: %w", context.Canceled)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	return nil
}

func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(path string, table *harness.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := table.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
