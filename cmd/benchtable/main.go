// Command benchtable regenerates the paper-reproduction experiments
// (DESIGN.md §4 maps each experiment id to a row of the paper's Table 1
// or an in-text claim) and prints the measured tables. EXPERIMENTS.md was
// produced from this tool's output.
//
// Examples:
//
//	benchtable                 # full sweep (minutes)
//	benchtable -quick          # reduced sweep
//	benchtable -only E3,E4     # just the probe experiments
//	benchtable -csv results/   # also dump CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tricomm/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchtable: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick  = flag.Bool("quick", false, "reduced sweeps")
		seed   = flag.Uint64("seed", 1, "experiment seed")
		only   = flag.String("only", "", "comma-separated experiment ids (default: all)")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSVs")
		trials = flag.Int("trials", 0, "override per-point trial count")
	)
	flag.Parse()

	cfg := harness.RunConfig{Seed: *seed, Quick: *quick, Trials: *trials}

	var selected []harness.Experiment
	if *only == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			exp, ok := harness.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, exp)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, exp := range selected {
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		table.ID = exp.ID
		table.Title = exp.Title
		table.PaperClaim = exp.PaperClaim
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s took %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, exp.ID+".csv"))
			if err != nil {
				return err
			}
			if err := table.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
