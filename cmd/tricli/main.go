// Command tricli is the client for a running tricommd daemon.
//
//	tricli -server http://127.0.0.1:7341 submit -kind far -n 512 -d 8 -trials 5 -wait
//	tricli -server http://127.0.0.1:7341 submit -scenario chung-lu -trials 5 -wait
//	tricli -server http://127.0.0.1:7341 get -job job-3
//	tricli -server http://127.0.0.1:7341 watch -job job-3
//	tricli -server http://127.0.0.1:7341 load -jobs 200 -c 8 -n 256
//	tricli -server http://127.0.0.1:7341 stats
//	tricli -server http://127.0.0.1:7341 stats -watch 2s
//	tricli list-scenarios
//
// submit prints the job id (and, with -wait, streams per-trial results
// until the verdict summary). load is the throughput generator: it
// submits -jobs jobs from -c concurrent clients and reports jobs/sec and
// the verdict tally. stats prints the service counters once; with
// -watch <interval> it polls /v1/stats and /metrics and reprints a live
// table spanning the service, engine, transport, and runtime layers
// until interrupted. list-scenarios prints the registry-generated
// scenario catalog — every listed family is submittable via -scenario
// (or as {"graph": {"family": ...}} over raw HTTP).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tricomm"
	"tricomm/internal/scenario"
	"tricomm/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tricli: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("tricli", flag.ContinueOnError)
	server := global.String("server", "http://127.0.0.1:7341", "tricommd base URL")
	global.Usage = usage(global)
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		global.Usage()
		return fmt.Errorf("missing subcommand")
	}
	cl := &service.Client{Base: *server}
	ctx := context.Background()
	switch rest[0] {
	case "submit":
		return cmdSubmit(ctx, cl, rest[1:])
	case "get":
		return cmdGet(ctx, cl, rest[1:])
	case "watch":
		return cmdWatch(ctx, cl, rest[1:])
	case "load":
		return cmdLoad(ctx, cl, rest[1:])
	case "stats":
		return cmdStats(ctx, cl, rest[1:])
	case "list-scenarios":
		fmt.Print(tricomm.ScenarioUsage())
		return nil
	default:
		global.Usage()
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(fs.Output(), "usage: tricli [-server URL] <submit|get|watch|load|stats|list-scenarios> [flags]\n")
		fs.PrintDefaults()
	}
}

// jobFlags registers the job-spec flags shared by submit and load. The
// returned constructor resolves -scenario (a family name or JSON spec)
// through the scenario registry; the legacy -kind/-n/-d/-eps flags keep
// working and route through the same registry server-side.
func jobFlags(fs *flag.FlagSet) func() (service.JobSpec, error) {
	var (
		kind      = fs.String("kind", "far", "legacy graph kind: far | random | bipartite (see list-scenarios for the full catalog)")
		scen      = fs.String("scenario", "", "scenario: a registry family name or JSON spec; overrides -kind/-n/-d/-eps")
		n         = fs.Int("n", 512, "number of vertices")
		d         = fs.Float64("d", 8, "target average degree")
		eps       = fs.Float64("eps", 0.25, "farness parameter (construction and tester)")
		k         = fs.Int("k", 4, "number of players")
		part      = fs.String("partition", "disjoint", "partition: "+strings.Join(tricomm.SplitSchemeNames(), " | "))
		proto     = fs.String("protocol", "sim-oblivious", "protocol: "+strings.Join(tricomm.ProtocolNames(), " | "))
		transport = fs.String("transport", "chan", "session transport: "+strings.Join(tricomm.TransportNames(), " | "))
		trials    = fs.Int("trials", 1, "trials per job")
		seed      = fs.Uint64("seed", 1, "base seed")
		knownDeg  = fs.Bool("known-degree", true, "tell the protocol the true average degree")
		check     = fs.Bool("check", false, "also report each instance's ground truth")
		faults    = fs.String("faults", "", "deterministic fault injection: off | lossy | chaos | JSON fault spec")
		trialTO   = fs.Duration("trial-timeout", 0, "per-trial wall-clock budget (0: server default)")
		maxFail   = fs.Int("max-failed-trials", 0, "aborted-trial budget: within it the job degrades to 'partial' instead of failing")
	)
	return func() (service.JobSpec, error) {
		graph := service.GraphSpec{Kind: *kind, Spec: scenario.Spec{N: *n, D: *d, Eps: *eps}}
		if *kind != "far" {
			graph.Eps = 0
		}
		if *scen != "" {
			sp, err := scenario.Parse(*scen)
			if err != nil {
				return service.JobSpec{}, err
			}
			graph = service.GraphSpec{Spec: sp}
		}
		return service.JobSpec{
			Graph:           graph,
			K:               *k,
			Partition:       *part,
			Protocol:        *proto,
			Eps:             *eps,
			KnownDegree:     *knownDeg,
			Trials:          *trials,
			Transport:       *transport,
			Seed:            *seed,
			Check:           *check,
			Faults:          *faults,
			TrialTimeoutMS:  trialTO.Milliseconds(),
			MaxFailedTrials: *maxFail,
		}, nil
	}
}

func cmdSubmit(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("tricli submit", flag.ContinueOnError)
	spec := jobFlags(fs)
	wait := fs.Bool("wait", false, "stream results until the job finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	js, err := spec()
	if err != nil {
		return err
	}
	ji, err := cl.Submit(ctx, js)
	if err != nil {
		return err
	}
	fmt.Printf("job: %s (%s)\n", ji.ID, ji.State)
	if !*wait {
		return nil
	}
	fin, err := cl.Stream(ctx, ji.ID, func(o service.TrialOutcome) error {
		printOutcome(o)
		return nil
	})
	if err != nil {
		return err
	}
	return printFinal(fin)
}

func cmdGet(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("tricli get", flag.ContinueOnError)
	job := fs.String("job", "", "job id")
	offset := fs.Int("offset", 0, "first trial result to fetch")
	limit := fs.Int("limit", -1, "max trial results to fetch (-1: all, 0: just the job envelope)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("get: -job required")
	}
	ji, err := cl.JobPage(ctx, *job, *offset, *limit)
	if err != nil {
		return err
	}
	for _, o := range ji.Results {
		printOutcome(o)
	}
	if *offset > 0 || *limit >= 0 {
		fmt.Printf("(results %d..%d of %d available)\n",
			ji.ResultsOffset, ji.ResultsOffset+len(ji.Results), ji.ResultsTotal)
	}
	return printFinal(ji)
}

func cmdWatch(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("tricli watch", flag.ContinueOnError)
	job := fs.String("job", "", "job id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("watch: -job required")
	}
	// Every delivered outcome advances the offset, so when the NDJSON
	// stream drops mid-job the watch reconnects and resumes exactly where
	// it left off (?offset=) instead of re-printing or losing trials.
	// Progress resets the failure budget; a server that is truly gone
	// (or a job that was collected) surfaces after a few attempts.
	seen, fails := 0, 0
	for {
		fin, err := cl.StreamFrom(ctx, *job, seen, func(o service.TrialOutcome) error {
			printOutcome(o)
			seen++
			fails = 0
			return nil
		})
		if err == nil {
			return printFinal(fin)
		}
		if ctx.Err() != nil || errors.Is(err, service.ErrNotFound) {
			return err
		}
		if fails++; fails > 5 {
			return fmt.Errorf("watch %s: stream kept dropping: %w", *job, err)
		}
		fmt.Fprintf(os.Stderr, "tricli: stream dropped (%v), resuming %s at trial %d\n", err, *job, seen)
		select {
		case <-time.After(time.Duration(fails) * 200 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func cmdLoad(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("tricli load", flag.ContinueOnError)
	spec := jobFlags(fs)
	jobs := fs.Int("jobs", 100, "total jobs to submit")
	conc := fs.Int("c", 4, "concurrent clients")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 || *conc < 1 {
		return fmt.Errorf("load: -jobs and -c must be positive")
	}
	base, err := spec()
	if err != nil {
		return err
	}
	var (
		next    atomic.Int64
		found   atomic.Int64
		free    atomic.Int64
		partial atomic.Int64
		failed  atomic.Int64
		bits    atomic.Int64
		retried atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, *conc)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= *jobs {
					return
				}
				spec := base
				spec.Seed = base.Seed + uint64(i)
				var ji service.JobInfo
				var err error
				for {
					ji, err = cl.Submit(ctx, spec)
					if err == nil {
						break
					}
					// The daemon sheds load with ErrBusy (503) when the
					// queue is full; back off and retry, fail on anything
					// else.
					if errors.Is(err, service.ErrBusy) {
						retried.Add(1)
						time.Sleep(5 * time.Millisecond)
						continue
					}
					errCh <- fmt.Errorf("submit %d: %w", i, err)
					return
				}
				fin, err := cl.Wait(ctx, ji.ID, 5*time.Millisecond)
				if err != nil {
					errCh <- fmt.Errorf("wait %d: %w", i, err)
					return
				}
				switch {
				case fin.State == service.StatePartial:
					partial.Add(1)
				case fin.State != service.StateDone:
					failed.Add(1)
				case fin.Summary != nil && fin.Summary.Found > 0:
					found.Add(1)
				default:
					free.Add(1)
				}
				if fin.Summary != nil {
					bits.Add(int64(fin.Summary.MeanBits * float64(fin.Summary.Trials)))
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}
	elapsed := time.Since(start)
	done := found.Load() + free.Load() + partial.Load() + failed.Load()
	fmt.Printf("load: %d jobs in %v (%.1f jobs/sec, %d clients)\n",
		done, elapsed.Round(time.Millisecond), float64(done)/elapsed.Seconds(), *conc)
	fmt.Printf("  found-triangle: %d\n  triangle-free:  %d\n  partial:        %d\n  failed:         %d\n",
		found.Load(), free.Load(), partial.Load(), failed.Load())
	fmt.Printf("  total bits: %d, 503-retries: %d\n", bits.Load(), retried.Load())
	if failed.Load() > 0 {
		return fmt.Errorf("%d jobs failed", failed.Load())
	}
	return nil
}

func cmdStats(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Duration("watch", 0, "poll and reprint every interval until interrupted (0: print once)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch <= 0 {
		return printStats(ctx, cl)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	var prevTrials, prevBits float64
	first := true
	for {
		st, err := cl.ServerStats(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		// The metrics scrape enriches the table with the engine, transport,
		// and runtime layers; a daemon without them (older build) still
		// watches fine on the service counters alone.
		e, _ := cl.Metrics(ctx)
		total := func(name string) float64 {
			if e == nil {
				return 0
			}
			return e.Total(name)
		}
		trials := float64(st.TrialsRun)
		bits := total("tricomm_engine_bits_total")
		if !first {
			fmt.Println()
		}
		fmt.Printf("%s  up %v  queued %d/%d  retained %d  workers %d\n",
			time.Now().Format("15:04:05"),
			(time.Duration(st.UptimeMS) * time.Millisecond).Round(time.Second),
			st.Queued, st.QueueDepth, st.Retained, st.Workers)
		fmt.Printf("  jobs       submitted %-8d done %-8d partial %-8d failed %d\n",
			st.Submitted, st.Completed, st.Partial, st.Failed)
		fmt.Printf("  trials     run %-8d retries %-8d aborted %d", st.TrialsRun, st.TrialRetries, st.TrialsAborted)
		if !first {
			fmt.Printf("   (+%.1f trials/s)", (trials-prevTrials)/watch.Seconds())
		}
		fmt.Println()
		if e != nil {
			fmt.Printf("  engine     sessions %-7.0f aborted %-8.0f bits %.0f", total("tricomm_engine_sessions_total"),
				total("tricomm_engine_sessions_aborted_total"), bits)
			if !first {
				fmt.Printf("   (+%.0f bits/s)", (bits-prevBits)/watch.Seconds())
			}
			fmt.Println()
			fmt.Printf("  transport  wire-bytes %-9.0f frames %-8.0f retransmits %.0f\n",
				total("tricomm_transport_wire_bytes_total"), total("tricomm_transport_frames_total"),
				total("tricomm_transport_retransmits_total"))
			if g, ok := e.Value("go_goroutines"); ok {
				heap, _ := e.Value("go_heap_alloc_bytes")
				fmt.Printf("  runtime    goroutines %-9.0f heap %.1fMB\n", g, heap/(1<<20))
			}
		}
		prevTrials, prevBits, first = trials, bits, false
		select {
		case <-time.After(*watch):
		case <-ctx.Done():
			return nil
		}
	}
}

func printStats(ctx context.Context, cl *service.Client) error {
	st, err := cl.ServerStats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("uptime: %v\nworkers: %d (queue %d, %d queued)\nsubmitted: %d\ncompleted: %d\npartial: %d\nfailed: %d\n",
		time.Duration(st.UptimeMS)*time.Millisecond, st.Workers, st.QueueDepth, st.Queued,
		st.Submitted, st.Completed, st.Partial, st.Failed)
	if st.TrialRetries > 0 || st.TrialsAborted > 0 {
		fmt.Printf("trial retries: %d\ntrials aborted: %d\n", st.TrialRetries, st.TrialsAborted)
	}
	return nil
}

func printOutcome(o service.TrialOutcome) {
	if o.Aborted {
		fmt.Printf("trial %d seed=%d: ABORTED after %d retries: %s\n",
			o.Trial, o.Seed, o.Retries, o.Error)
		return
	}
	verdict := "triangle-free"
	if !o.TriangleFree {
		if o.Witness != nil {
			verdict = fmt.Sprintf("found-triangle %v", *o.Witness)
		} else {
			verdict = "found-triangle (no witness!)"
		}
	}
	truth := ""
	if o.HasTriangle != nil {
		truth = fmt.Sprintf(" truth-has-triangle=%v", *o.HasTriangle)
	}
	resil := ""
	if o.Retransmits > 0 || o.FramesLost > 0 {
		resil = fmt.Sprintf(" retransmits=%d frames-lost=%d", o.Retransmits, o.FramesLost)
	}
	fmt.Printf("trial %d seed=%d: %s  bits=%d wire-bytes=%d rounds=%d%s%s\n",
		o.Trial, o.Seed, verdict, o.Bits, o.WireBytes, o.Rounds, resil, truth)
}

func printFinal(ji service.JobInfo) error {
	if ji.State == service.StateFailed {
		return fmt.Errorf("job %s failed: %s", ji.ID, ji.Error)
	}
	if ji.Summary != nil {
		s := ji.Summary
		extra := ""
		if s.FailedTrials > 0 || s.Retries > 0 {
			extra = fmt.Sprintf(", %d aborted, %d retries", s.FailedTrials, s.Retries)
		}
		fmt.Printf("%s %s: %d/%d trials found a triangle, mean %.0f bits, max %d bits, %d wire bytes, %dms%s\n",
			ji.ID, ji.State, s.Found, s.Trials, s.MeanBits, s.MaxBits, s.WireBytes, s.ElapsedMS, extra)
	} else {
		fmt.Printf("%s %s (%d trials done)\n", ji.ID, ji.State, ji.TrialsDone)
	}
	return nil
}
