// Command tricommd is the triangle-freeness testing daemon: it accepts
// jobs (generator specs or uploaded edge lists) over a JSON/HTTP API, runs
// the protocol sessions on a bounded worker pool, and streams per-trial
// verdict/witness/bit-cost results.
//
//	tricommd -addr 127.0.0.1:7341 -workers 4
//	tricommd -addr 127.0.0.1:7341 -db /var/lib/tricommd/jobs.db
//	tricommd -faults lossy -trial-timeout 30s -trial-retries 2
//	tricommd -log-json -pprof
//
// With -faults the daemon injects deterministic link faults (drops,
// duplication, corruption, stalls, disconnects — seeded per trial, so
// outcomes replay exactly) into every session of jobs that don't carry
// their own "faults" spec. Trials whose session aborts or exceeds the
// trial timeout are re-run up to -trial-retries times and then recorded
// aborted; a job ends "partial" while its aborted trials stay within its
// max_failed_trials budget.
//
// With -db the daemon keeps every job spec, state, and per-trial result
// in an embedded on-disk store (a single append-only log file, no
// external dependencies). A daemon killed mid-job and restarted on the
// same -db resumes unfinished jobs automatically: results that already
// landed are kept verbatim and only the missing trials are re-run from
// their deterministic per-trial seeds, so the final results are
// byte-identical to an uninterrupted run. Finished jobs age out by the
// -keep count bound and, optionally, the -ttl age bound. Without -db
// jobs live in memory only and a restart forgets everything.
//
// Logs are structured (log/slog): human-readable text by default,
// one-JSON-object-per-line with -log-json. Every API request is logged
// with a request ID, method, path, status, and duration; /healthz and
// /metrics probes are exempt so pollers don't flood the log. -quiet
// suppresses access logs entirely (lifecycle events remain).
//
// Observability: GET /metrics serves the Prometheus text exposition of
// every layer's counters (service jobs/trials/store, engine sessions,
// transport wire/faults, Go runtime). With -pprof the net/http/pprof
// handlers are mounted under /debug/pprof/ for CPU, heap, and goroutine
// profiles. Neither endpoint influences job results: metrics are
// write-only observed effects.
//
// API (see internal/service):
//
//	POST /v1/jobs             submit a job
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status + per-trial results
//	GET  /v1/jobs/{id}/stream NDJSON stream of trial results
//	GET  /v1/stats            service counters
//	GET  /healthz             liveness + readiness
//	GET  /metrics             Prometheus text exposition
//
// Submit with curl:
//
//	curl -s -X POST localhost:7341/v1/jobs -d '{
//	  "graph": {"kind": "far", "n": 512, "d": 8, "eps": 0.25},
//	  "k": 4, "protocol": "sim-oblivious", "eps": 0.25,
//	  "known_degree": true, "trials": 5, "seed": 1
//	}'
//
// or use cmd/tricli.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"tricomm/internal/obs"
	"tricomm/internal/service"
	"tricomm/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tricommd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7341", "HTTP listen address")
		workers   = flag.Int("workers", 2, "concurrent jobs")
		queue     = flag.Int("queue", 64, "queued-job bound (503 beyond it)")
		trialJobs = flag.Int("trial-jobs", 1, "per-job trial parallelism")
		intraW    = flag.Int("intra-workers", 0, "goroutines per trial for the parallel graph kernels (<= 0: $TRICOMM_INTRA_WORKERS, then 1); results are identical at any value")
		keep      = flag.Int("keep", 4096, "finished jobs retained for GET")
		db        = flag.String("db", "", "path to the embedded on-disk job store; jobs survive restarts and unfinished ones resume (empty: in-memory only)")
		ttl       = flag.Duration("ttl", 0, "additionally expire finished jobs this long after completion (0: only the -keep count bound)")
		faults    = flag.String("faults", "", "deterministic fault injection applied to jobs that don't set their own spec: off | lossy | chaos | JSON fault spec")
		trialTO   = flag.Duration("trial-timeout", 0, "default per-trial wall-clock budget for jobs that don't set trial_timeout_ms (0: none)")
		retries   = flag.Int("trial-retries", 2, "re-runs of an aborted or timed-out trial, same seed, before it is recorded aborted (-1: none)")
		logJSON   = flag.Bool("log-json", false, "emit logs as one JSON object per line")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		quiet     = flag.Bool("quiet", false, "suppress per-request access logging")
	)
	flag.Parse()

	if _, err := transport.ParseFaultSpec(*faults); err != nil {
		return fmt.Errorf("-faults: %w", err)
	}

	logger := newLogger(*logJSON)
	obs.RegisterRuntime()

	var store service.Store = service.NewMemStore()
	if *db != "" {
		fs, err := service.OpenFileStore(*db)
		if err != nil {
			return fmt.Errorf("open -db: %w", err)
		}
		store = fs
	}
	defer store.Close()
	svc := service.New(service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		TrialJobs:     *trialJobs,
		IntraWorkers:  *intraW,
		KeepJobs:      *keep,
		JobTTL:        *ttl,
		TrialTimeout:  *trialTO,
		TrialRetries:  *retries,
		DefaultFaults: *faults,
		Logger:        logger,
		Store:         store,
	})
	if st := svc.Stats(); st.Resumed > 0 {
		logger.Info("resumed unfinished jobs", "count", st.Resumed, "db", *db)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	var handler http.Handler = mux
	if !*quiet {
		handler = logRequests(logger, handler)
	}
	srv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close() // drain workers before the deferred store.Close
		return err
	}
	logger.Info("listening", "url", "http://"+ln.Addr().String(), "workers", *workers, "queue", *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "error", err.Error())
	}
	svc.Close()
	<-serveErr // Serve has returned ErrServerClosed by now
	return nil
}

// newLogger builds the process logger: slog text to stderr, or JSON lines
// with -log-json.
func newLogger(jsonLines bool) *slog.Logger {
	if jsonLines {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// reqSeq numbers requests for the access log; an ID ties a request's log
// lines together and shows up nowhere else (no header round-trip needed
// for a single-process daemon).
var reqSeq atomic.Int64

// logRequests is the access-log middleware: one structured line per
// request with ID, method, path, status, and duration. Probe endpoints
// (/healthz, /metrics) are exempt — scrapers and load balancers hit them
// every few seconds and would drown the signal.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		id := "req-" + strconv.FormatInt(reqSeq.Add(1), 10)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"req", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur", time.Since(start).Round(time.Microsecond))
	})
}

// statusWriter captures the response status for the access log while
// passing the Flusher capability through — the NDJSON stream endpoint
// needs Flush to deliver trial lines as they land.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
