package tricomm

// Golden-value regression tests: the values below were captured from the
// seed implementation (sequential fan-out, per-run view construction,
// mutex metering) before the unified engine landed. The engine's
// concurrent fan-out, cached views, and atomic metering must reproduce
// every verdict, witness, bit count, per-player split, and round count
// exactly.

import (
	"context"
	"reflect"
	"testing"
)

type goldenCase struct {
	name      string
	n         int
	d         float64
	k         int
	seed      uint64
	far       bool
	opts      Options
	free      bool
	witness   Triangle
	bits      int64
	perPlayer []int64
	rounds    int64
	proto     string
}

var goldenCases = []goldenCase{
	{name: "interactive-far", n: 512, d: 8, k: 4, seed: 11, far: true,
		opts: Options{Protocol: Interactive, Eps: 0.2, AvgDegree: 8},
		free: false, witness: Triangle{A: 1, B: 315, C: 376}, bits: 415611,
		perPlayer: []int64{103928, 103999, 103844, 103840}, rounds: 399, proto: "unrestricted"},
	{name: "interactive-oblivious-far", n: 512, d: 8, k: 4, seed: 12, far: true,
		opts: Options{Protocol: Interactive, Eps: 0.2},
		free: false, witness: Triangle{A: 88, B: 114, C: 228}, bits: 530434,
		perPlayer: []int64{132603, 132568, 132700, 132563}, rounds: 514, proto: "unrestricted"},
	{name: "blackboard-far", n: 512, d: 8, k: 4, seed: 13, far: true,
		opts: Options{Protocol: InteractiveBlackboard, Eps: 0.2, AvgDegree: 8},
		free: false, witness: Triangle{A: 7, B: 330, C: 415}, bits: 1627,
		perPlayer: []int64{416, 421, 389, 401}, rounds: 1, proto: "unrestricted-blackboard"},
	{name: "simlow-far", n: 1024, d: 8, k: 6, seed: 14, far: true,
		opts: Options{Protocol: SimultaneousLow, Eps: 0.2, AvgDegree: 8},
		free: false, witness: Triangle{A: 10, B: 359, C: 991}, bits: 6668,
		perPlayer: []int64{1028, 1088, 1228, 1088, 1128, 1108}, rounds: 1, proto: "sim-low"},
	{name: "simhigh-far", n: 1024, d: 64, k: 6, seed: 15, far: true,
		opts: Options{Protocol: SimultaneousHigh, Eps: 0.2, AvgDegree: 64},
		free: false, witness: Triangle{A: 59, B: 145, C: 180}, bits: 12728,
		perPlayer: []int64{2148, 2068, 2128, 1868, 2508, 2008}, rounds: 1, proto: "sim-high"},
	{name: "simobl-far", n: 1024, d: 8, k: 6, seed: 16, far: true,
		opts: Options{Protocol: SimultaneousOblivious, Eps: 0.2},
		free: false, witness: Triangle{A: 2, B: 211, C: 212}, bits: 58600,
		perPlayer: []int64{10408, 9892, 10728, 8692, 8752, 10128}, rounds: 1, proto: "sim-oblivious"},
	{name: "exact-far", n: 256, d: 8, k: 4, seed: 17, far: true,
		opts: Options{Protocol: Exact},
		free: false, witness: Triangle{A: 4, B: 10, C: 12}, bits: 16448,
		perPlayer: []int64{4016, 3984, 4080, 4368}, rounds: 1, proto: "exact-baseline"},
	{name: "simlow-free", n: 1024, d: 8, k: 6, seed: 18, far: false,
		opts: Options{Protocol: SimultaneousLow, Eps: 0.2, AvgDegree: 8},
		free: true, bits: 5128,
		perPlayer: []int64{1008, 828, 628, 888, 1008, 768}, rounds: 1, proto: "sim-low"},
	{name: "interactive-free", n: 512, d: 8, k: 4, seed: 19, far: false,
		opts: Options{Protocol: Interactive, Eps: 0.2, AvgDegree: 8},
		free: true, bits: 591939,
		perPlayer: []int64{148250, 147851, 148001, 147837}, rounds: 600, proto: "unrestricted"},
	{name: "blackboard-free", n: 512, d: 8, k: 4, seed: 20, far: false,
		opts: Options{Protocol: InteractiveBlackboard, Eps: 0.2},
		free: true, bits: 15505,
		perPlayer: []int64{3816, 3814, 4034, 3841}, rounds: 6, proto: "unrestricted-blackboard"},
}

func (gc goldenCase) cluster(t *testing.T) *Cluster {
	t.Helper()
	var g *Graph
	if gc.far {
		g, _ = FarGraph(gc.n, gc.d, 0.2, int64(gc.seed))
	} else {
		g = BipartiteGraph(gc.n, gc.d, int64(gc.seed))
	}
	cluster, err := Split(g, gc.k, SplitDisjoint, gc.seed)
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

func (gc goldenCase) check(t *testing.T, rep Report) {
	t.Helper()
	if rep.TriangleFree != gc.free {
		t.Errorf("TriangleFree = %v, want %v", rep.TriangleFree, gc.free)
	}
	if rep.Witness != gc.witness {
		t.Errorf("Witness = %v, want %v", rep.Witness, gc.witness)
	}
	if rep.Bits != gc.bits {
		t.Errorf("Bits = %d, want %d", rep.Bits, gc.bits)
	}
	if !reflect.DeepEqual(rep.PerPlayerBits, gc.perPlayer) {
		t.Errorf("PerPlayerBits = %v, want %v", rep.PerPlayerBits, gc.perPlayer)
	}
	if rep.Rounds != gc.rounds {
		t.Errorf("Rounds = %d, want %d", rep.Rounds, gc.rounds)
	}
	if rep.Protocol != gc.proto {
		t.Errorf("Protocol = %q, want %q", rep.Protocol, gc.proto)
	}
}

func TestGoldenValuesMatchSeed(t *testing.T) {
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			gc.check(t, mustTest(t, gc.cluster(t), gc.opts))
		})
	}
}

func mustTest(t *testing.T, c *Cluster, opts Options) Report {
	t.Helper()
	rep, err := c.Test(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSessionMatchesTest(t *testing.T) {
	// A Session reuses cached views and must be observably identical to
	// Cluster.Test — on every call, including repeats on one cluster.
	for _, gc := range goldenCases[:4] {
		t.Run(gc.name, func(t *testing.T) {
			cluster := gc.cluster(t)
			s, err := cluster.Session(gc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if s.Protocol() != gc.proto {
				t.Fatalf("session protocol = %q, want %q", s.Protocol(), gc.proto)
			}
			for call := 0; call < 3; call++ {
				rep, err := s.Test(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				gc.check(t, rep)
			}
		})
	}
}

func TestSessionWithSeedIsIndependent(t *testing.T) {
	gc := goldenCases[3] // simlow-far
	cluster := gc.cluster(t)
	s, err := cluster.Session(gc.opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Test(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reseeded, err := s.TestWithSeed(context.Background(), "retry/1")
	if err != nil {
		t.Fatal(err)
	}
	// Different randomness must actually change the sampled transcript...
	if reseeded.Bits == base.Bits {
		t.Fatalf("reseeded run drew identical transcript (bits %d)", base.Bits)
	}
	// ...while staying deterministic in the tag.
	again, err := s.TestWithSeed(context.Background(), "retry/1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reseeded, again) {
		t.Fatalf("TestWithSeed not deterministic: %+v vs %+v", reseeded, again)
	}
}

func TestReportPhaseBits(t *testing.T) {
	gc := goldenCases[0] // interactive-far
	rep := mustTest(t, gc.cluster(t), gc.opts)
	if len(rep.PhaseBits) == 0 {
		t.Fatal("interactive tester reported no phase split")
	}
	// Engine phases are disjoint: they partition the total exactly.
	var sum int64
	for _, v := range rep.PhaseBits {
		sum += v
	}
	if sum != rep.Bits {
		t.Fatalf("phases sum to %d, want %d (phases: %v)", sum, rep.Bits, rep.PhaseBits)
	}
	for _, phase := range []string{"estimate", "candidates", "edges"} {
		if _, ok := rep.PhaseBits[phase]; !ok {
			t.Fatalf("missing phase %q: %v", phase, rep.PhaseBits)
		}
	}
}
