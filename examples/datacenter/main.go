// Datacenter scenario: interaction-graph edges (e.g. "who messaged whom")
// are logged independently by k datacenters, with overlap — the same event
// may appear in several logs. A central auditor wants to know whether the
// interaction graph is triangle-free or far from it (triangle-richness is
// a standard proxy for community structure) without hauling the logs.
//
// This example compares, across densities spanning the d = √n crossover:
//   - the naive exact audit (ship everything, Θ(k·nd·log n) bits),
//   - the interactive tester (coordinator model, Õ(k(nd)^{1/4} + k²)),
//   - the one-round degree-oblivious tester (no coordination, no knowledge
//     of the density, each datacenter sends a single message).
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"tricomm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "datacenter: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n   = 4096
		k   = 8
		eps = 0.2
	)
	sqrtN := math.Sqrt(n)
	fmt.Printf("auditing interaction graphs: n=%d, k=%d datacenters, duplicated logs\n", n, k)
	fmt.Printf("%-10s %-8s %14s %14s %14s\n", "density", "regime", "exact_bits", "interactive", "one-round")

	for _, d := range []float64{4, 16, 64, 128} {
		regime := "d<√n"
		if d >= sqrtN {
			regime = "d≥√n"
		}
		g, _ := tricomm.FarGraph(n, d, eps, int64(d))
		cluster, err := tricomm.Split(g, k, tricomm.SplitDuplicate, uint64(d))
		if err != nil {
			return err
		}
		ctx := context.Background()

		exact, err := cluster.Test(ctx, tricomm.Options{Protocol: tricomm.Exact})
		if err != nil {
			return err
		}
		inter, err := cluster.Test(ctx, tricomm.Options{
			Protocol: tricomm.Interactive, Eps: eps, AvgDegree: g.AvgDegree(),
		})
		if err != nil {
			return err
		}
		// The one-round audit runs as a Session: the per-datacenter views
		// are built once and reused, so amplifying the one-sided success
		// probability with independent repetitions costs only communication.
		session, err := cluster.Session(tricomm.Options{
			Protocol: tricomm.SimultaneousOblivious, Eps: eps,
		})
		if err != nil {
			return err
		}
		oneRound, err := session.Test(ctx)
		if err != nil {
			return err
		}
		// The printed column is the audit's total spend: up to 3 one-round
		// repetitions when the early ones come back triangle-free.
		oneRoundBits := oneRound.Bits
		for rep := 1; oneRound.TriangleFree && rep < 3; rep++ {
			retry, err := session.TestWithSeed(ctx, fmt.Sprintf("audit/%d", rep))
			if err != nil {
				return err
			}
			oneRoundBits += retry.Bits
			oneRound = retry
		}
		fmt.Printf("%-10.0f %-8s %14d %14d %14d\n",
			d, regime, exact.Bits, inter.Bits, oneRoundBits)
		if !exact.TriangleFree && oneRound.TriangleFree {
			fmt.Printf("  (one-round tester missed on this seed — one-sided error, rerun with a fresh seed)\n")
		}
	}
	fmt.Println("\ntakeaway: the testers stay orders of magnitude under the exact audit,")
	fmt.Println("and the one-round tester needs neither interaction nor the density.")
	return nil
}
