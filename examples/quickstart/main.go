// Quickstart: build a graph, shard its edges across players, and test
// triangle-freeness with the degree-oblivious one-round protocol.
package main

import (
	"context"
	"fmt"
	"os"

	"tricomm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A graph that is certifiably 0.2-far from triangle-free: at least 20%
	// of its edges must be deleted to kill every triangle.
	far, certEps := tricomm.FarGraph(2048, 8, 0.2, 1)
	fmt.Printf("ε-far graph:  n=%d m=%d certified eps=%.2f\n", far.N(), far.M(), certEps)

	// And a triangle-free control (bipartite graphs have no odd cycles).
	free := tricomm.BipartiteGraph(2048, 8, 1)
	fmt.Printf("control:      n=%d m=%d triangle-free\n", free.N(), free.M())

	for _, tc := range []struct {
		name string
		g    *tricomm.Graph
	}{{"eps-far", far}, {"triangle-free", free}} {
		// Shard the edges across 8 players, with duplication — several
		// players may hold the same edge, as the model allows.
		cluster, err := tricomm.Split(tc.g, 8, tricomm.SplitDuplicate, 42)
		if err != nil {
			return err
		}
		// One round, no player ever sees another's input, and nobody needs
		// to know the average degree.
		rep, err := cluster.Test(context.Background(), tricomm.Options{
			Protocol: tricomm.Auto,
			Eps:      0.2,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s via %s:\n", tc.name, rep.Protocol)
		if rep.TriangleFree {
			fmt.Println("  verdict: triangle-free")
		} else {
			fmt.Printf("  verdict: triangle %v found (guaranteed real)\n", rep.Witness)
		}
		fmt.Printf("  cost: %d bits across %d players (graph is %d bits raw)\n",
			rep.Bits, cluster.K(), tc.g.M()*2*11)
	}
	return nil
}
