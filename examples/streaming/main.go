// Streaming corollary (§4.2.2): one-way communication lower bounds
// transfer to one-pass streaming space bounds. This example runs the
// space-bounded star detector over µ edge streams and shows its success
// probability rising as the space budget crosses the ~n^{1/4} scale — and
// a naive equal-space reservoir detector doing much worse.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"tricomm/internal/lowerbound"
	"tricomm/internal/streamred"
	"tricomm/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "streaming: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nPart = 250
	const gamma = 2.0
	const trials = 25
	n := 3 * nPart

	fmt.Printf("one-pass triangle-edge detection on µ streams (n=%d, d≈√n)\n", n)
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "arm_cap", "space_bits", "star", "reservoir")

	for _, capArms := range []int{2, 4, 8, 16, 32, 64} {
		starWins, resWins := 0, 0
		var space int
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
			stream := streamred.Stream{}
			stream.Edges = append(stream.Edges, inst.Alice...)
			stream.Edges = append(stream.Edges, inst.Bob...)
			stream.Edges = append(stream.Edges, inst.Charlie...)

			star := streamred.NewStarDetector(xrand.New(uint64(trial)), inst.NPart, capArms, inst.N())
			space = star.SpaceBits()
			if e, ok := streamred.Drive(star, stream); ok && inst.IsValidOutput(e) {
				starWins++
			}
			res := streamred.NewReservoirDetector(xrand.New(uint64(trial)), space/(2*11), inst.N())
			if _, ok := streamred.Drive(res, stream); ok {
				resWins++
			}
		}
		fmt.Printf("%-10d %-12d %2d/%-9d %2d/%d\n", capArms, space, starWins, trials, resWins, trials)
	}
	fmt.Printf("\nreference: n^(1/4)·log n ≈ %.0f bits — the Ω(n^{1/4}) space bound's scale;\n",
		math.Pow(float64(n), 0.25)*math.Log2(float64(n)))
	fmt.Println("the star detector (the one-way strategy, streamed) crosses 50% there,")
	fmt.Println("while equal-space reservoir sampling stays near zero.")
	return nil
}
