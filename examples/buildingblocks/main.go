// Building blocks (§3.1): the property-testing primitives, run as live
// multiparty protocols over a duplicated edge partition. Each primitive
// prints its answer and its exact communication cost, illustrating the
// paper's point that the classic query-model toolkit translates to the
// coordinator model with at most logarithmic overhead — and that
// duplication changes which implementations are viable.
package main

import (
	"context"
	"fmt"
	"os"

	"tricomm/internal/blocks"
	"tricomm/internal/comm"
	"tricomm/internal/graph"
	"tricomm/internal/partition"
	"tricomm/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "buildingblocks: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A multi-scale graph: hubs of degrees 2, 6, 18, 54 with triangles at
	// one scale — and every edge duplicated to half the players on average.
	shared := xrand.New(7)
	g := graph.BucketStress(graph.BucketStressParams{
		N: 3000, Levels: 4, HubsPer: 3, TriLevel: 2,
	}, shared.Stream("gen"))
	const k = 6
	part := partition.Duplicate{Q: 0.5}.Split(g, k, shared)
	fmt.Printf("graph: n=%d m=%d; %d players hold %d edge copies (duplication %.1fx)\n\n",
		g.N(), g.M(), k, part.TotalHeld(), float64(part.TotalHeld())/float64(g.M()))

	cfg := comm.Config{N: g.N(), Inputs: part.Inputs, Shared: shared}
	stats, err := comm.Run(context.Background(), cfg, func(ctx context.Context, c *comm.Coordinator) error {
		step := costReporter(c)

		// 1. Edge query (dense-model primitive).
		e := g.Edges()[0]
		has, err := blocks.EdgeQuery(ctx, c, e)
		if err != nil {
			return err
		}
		step(fmt.Sprintf("EdgeQuery(%v) = %v", e, has))

		// 2. Uniform random incident edge — unbiased under duplication via
		// the shared-permutation trick.
		hub := maxDegreeVertex(g)
		inc, ok, err := blocks.RandIncidentEdge(ctx, c, hub, "demo")
		if err != nil {
			return err
		}
		step(fmt.Sprintf("RandIncidentEdge(hub %d, deg %d) = %v ok=%v", hub, g.Degree(hub), inc, ok))

		// 3. Random walk (sparse-model primitive).
		path, err := blocks.RandomWalk(ctx, c, hub, 5, "walk")
		if err != nil {
			return err
		}
		step(fmt.Sprintf("RandomWalk(5 steps) = %v", path))

		// 4. Degree approximation under duplication (Thm 3.1) vs the exact
		// bitmap protocol — the reason approximation exists.
		est, err := blocks.ApproxDegree(ctx, c, hub, blocks.DefaultApprox("deg"))
		if err != nil {
			return err
		}
		step(fmt.Sprintf("ApproxDegree(hub) = %.0f (true %d, promised 4-approx)", est, g.Degree(hub)))
		exact, err := blocks.ExactDegree(ctx, c, hub)
		if err != nil {
			return err
		}
		step(fmt.Sprintf("ExactDegree(hub) = %d — exactness costs Θ(k·n) bits", exact))

		// 5. Distinct elements: |E| under duplication.
		mEst, err := blocks.ApproxDistinctEdges(ctx, c, blocks.DefaultApprox("m"))
		if err != nil {
			return err
		}
		step(fmt.Sprintf("ApproxDistinctEdges = %.0f (true %d)", mEst, g.M()))

		// 6. BFS over the union graph.
		order, _, err := blocks.BFS(ctx, c, hub, 12)
		if err != nil {
			return err
		}
		step(fmt.Sprintf("BFS from hub visited %d vertices", len(order)))
		return nil
	}, comm.ServeLoop(blocks.Handle))
	if err != nil {
		return err
	}
	fmt.Printf("\ntotal: %d bits, %d messages, %d rounds\n",
		stats.TotalBits, stats.Messages, stats.Rounds)
	return nil
}

// costReporter prints the incremental cost of each step.
func costReporter(c *comm.Coordinator) func(label string) {
	last := int64(0)
	return func(label string) {
		cur := c.Stats().TotalBits
		fmt.Printf("%-70s %8d bits\n", label, cur-last)
		last = cur
	}
}

func maxDegreeVertex(g *graph.Graph) int {
	best := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	return best
}
