// Lower-bound walkthrough: the hard distribution µ, the one-way vs
// simultaneous separation for triangle-edge detection, and the Boolean
// Hidden Matching reduction — §4 of the paper, measured.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"tricomm/internal/lowerbound"
	"tricomm/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lowerbound: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nPart = 250
	const gamma = 2.0
	n := 3 * nPart

	// 1. The hard distribution µ: tripartite, each cross edge iid γ/√n.
	rng := rand.New(rand.NewSource(1))
	inst := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, rng)
	pack, eps := inst.FarnessCertificate()
	fmt.Printf("µ instance: n=%d m=%d avg-degree=%.1f (Θ(√n)=%.1f)\n",
		n, inst.G.M(), inst.G.AvgDegree(), math.Sqrt(float64(n)))
	fmt.Printf("Lemma 4.5: %d edge-disjoint triangles ⇒ %.2f-far from triangle-free\n", pack, eps)
	fmt.Printf("valid outputs (Charlie's triangle edges): %d of %d Charlie edges\n\n",
		len(inst.TriangleEdgesOfCharlie()), len(inst.Charlie))

	// 2. Success vs budget: the one-way star strategy (quadratic covering)
	// against the simultaneous window strategy (linear covering).
	fmt.Println("triangle-edge detection on µ — success over 20 trials per budget:")
	fmt.Printf("%-12s %-10s %-10s\n", "budget_bits", "one-way", "simultaneous")
	for _, budget := range []int{40, 80, 160, 320, 640, 1280} {
		owWins, simWins := 0, 0
		for trial := 0; trial < 20; trial++ {
			trng := rand.New(rand.NewSource(int64(trial)))
			ti := lowerbound.SampleMu(lowerbound.MuParams{NPart: nPart, Gamma: gamma}, trng)
			sh := xrand.New(uint64(trial))
			if res, err := (lowerbound.OneWayProbe{BudgetBits: budget}).Run(ti, sh); err != nil {
				return err
			} else if res.Success {
				owWins++
			}
			if res, err := (lowerbound.SimProbe{BudgetBits: budget, Gamma: gamma}).Run(ti, sh); err != nil {
				return err
			} else if res.Success {
				simWins++
			}
		}
		fmt.Printf("%-12d %2d/20      %2d/20\n", budget, owWins, simWins)
	}
	fmt.Printf("reference scales: n^(1/4)·log n ≈ %.0f bits, √n·log n ≈ %.0f bits\n",
		math.Pow(float64(n), 0.25)*math.Log2(float64(n)),
		math.Sqrt(float64(n))*math.Log2(float64(n)))
	fmt.Println("the simultaneous threshold sits quadratically above the one-way one —")
	fmt.Println("the separation behind Theorems 4.7 (Ω(n^1/4)) and §4.2.3 (Ω(√n)).")

	// 3. The Boolean Hidden Matching reduction (Theorem 4.16).
	fmt.Println("\nBoolean Hidden Matching reduction (d = Θ(1) regime):")
	for _, allZero := range []bool{true, false} {
		bhm := lowerbound.SampleBHM(200, allZero, rng)
		red := lowerbound.Reduce(bhm)
		tri := red.G.CountTriangles()
		side := "Mx⊕w = 1ⁿ"
		if allZero {
			side = "Mx⊕w = 0ⁿ"
		}
		fmt.Printf("  %s → graph with n=%d, %d triangles (expected %d)\n",
			side, red.G.N(), tri, red.ExpectedTriangles())
	}
	fmt.Println("deciding BHM ⇒ testing triangle-freeness, so the Ω(√n) BHM bound transfers.")
	return nil
}
