package tricomm

// Property/invariant suite at the facade layer: for every protocol ×
// split scheme, (a) soundness — a reported witness is always a real
// triangle of the union graph, and a triangle-free graph is never
// rejected (the one-sided error guarantee is structural, not
// probabilistic), and (b) accounting — Report.PhaseBits values are
// disjoint by construction of the engine meter and must sum exactly to
// Report.Bits, and per-player traffic never exceeds the total.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

var invariantProtocols = []struct {
	name string
	p    Protocol
}{
	{"interactive", Interactive},
	{"blackboard", InteractiveBlackboard},
	{"sim-low", SimultaneousLow},
	{"sim-high", SimultaneousHigh},
	{"sim-oblivious", SimultaneousOblivious},
	{"exact", Exact},
}

var invariantSchemes = []struct {
	name string
	s    SplitScheme
}{
	{"disjoint", SplitDisjoint},
	{"duplicate", SplitDuplicate},
	{"byvertex", SplitByVertex},
	{"all", SplitAll},
}

// isTriangleOf reports whether w is a genuine triangle of g.
func isTriangleOf(g *Graph, w Triangle) bool {
	if w.A == w.B || w.B == w.C || w.A == w.C {
		return false
	}
	return g.HasEdge(w.A, w.B) && g.HasEdge(w.B, w.C) && g.HasEdge(w.A, w.C)
}

// checkAccounting verifies the PhaseBits/Bits/PerPlayerBits relations.
func checkAccounting(t *testing.T, rep Report) {
	t.Helper()
	if rep.Bits < 0 {
		t.Fatalf("negative total bits %d", rep.Bits)
	}
	if rep.PhaseBits != nil {
		var sum int64
		for phase, v := range rep.PhaseBits {
			if v < 0 {
				t.Fatalf("phase %q has negative bits %d", phase, v)
			}
			sum += v
		}
		if sum != rep.Bits {
			t.Fatalf("phase bits sum %d != total bits %d (phases %v)", sum, rep.Bits, rep.PhaseBits)
		}
	}
	var perSum int64
	for j, v := range rep.PerPlayerBits {
		if v < 0 {
			t.Fatalf("player %d has negative bits %d", j, v)
		}
		perSum += v
	}
	if perSum > rep.Bits {
		t.Fatalf("per-player bits sum %d exceeds total %d", perSum, rep.Bits)
	}
}

// TestInvariantSoundnessFarGraphs runs every protocol on every split of
// an ε-far graph: any reported witness must be a real triangle of the
// union of the players' inputs, and the accounting must balance. (The
// union equals the split graph for all schemes — that containment is
// fuzzed separately in internal/partition.)
func TestInvariantSoundnessFarGraphs(t *testing.T) {
	const (
		n   = 192
		d   = 8.0
		eps = 0.25
		k   = 4
	)
	for _, seed := range []uint64{3, 17} {
		g, certEps := FarGraph(n, d, eps, int64(seed))
		for _, sc := range invariantSchemes {
			cl, err := Split(g, k, sc.s, seed)
			if err != nil {
				t.Fatal(err)
			}
			union := cl.Union()
			for _, pr := range invariantProtocols {
				t.Run(fmt.Sprintf("%s/%s/seed%d", pr.name, sc.name, seed), func(t *testing.T) {
					rep, err := cl.Test(context.Background(), Options{
						Protocol: pr.p, Eps: certEps, AvgDegree: g.AvgDegree(),
					})
					if err != nil {
						t.Fatal(err)
					}
					if !rep.TriangleFree && !isTriangleOf(union, rep.Witness) {
						t.Fatalf("witness %v is not a triangle of the union graph", rep.Witness)
					}
					checkAccounting(t, rep)
				})
			}
		}
	}
}

// TestInvariantTriangleFreeNeverRejected is the structural half of
// one-sided error: on bipartite (hence triangle-free) inputs, every
// protocol under every split scheme must answer triangle-free — there is
// no randomness budget that excuses a false rejection.
func TestInvariantTriangleFreeNeverRejected(t *testing.T) {
	const (
		n = 192
		d = 8.0
		k = 4
	)
	for _, seed := range []uint64{5, 23} {
		g := BipartiteGraph(n, d, int64(seed))
		for _, sc := range invariantSchemes {
			cl, err := Split(g, k, sc.s, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range invariantProtocols {
				t.Run(fmt.Sprintf("%s/%s/seed%d", pr.name, sc.name, seed), func(t *testing.T) {
					rep, err := cl.Test(context.Background(), Options{
						Protocol: pr.p, Eps: 0.2, AvgDegree: g.AvgDegree(),
					})
					if err != nil {
						t.Fatal(err)
					}
					if !rep.TriangleFree {
						t.Fatalf("triangle-free graph rejected with witness %v", rep.Witness)
					}
					checkAccounting(t, rep)
				})
			}
		}
	}
}

// TestInvariantTransportParity pins the transport-agnosticism contract
// end to end: every protocol under every split scheme must produce a
// seed-identical report — verdict, witness, total bits, per-player bits,
// rounds, and per-phase attribution — whether its sessions run over
// in-process channels, net.Pipe, TCP loopback sockets, or the simulated
// WAN. Coordinator-model runs must additionally report wire bytes
// consistent with the bit meter, and identical across transports (the
// framing layout is shared).
func TestInvariantTransportParity(t *testing.T) {
	const (
		n   = 128
		d   = 6.0
		eps = 0.25
		k   = 4
	)
	transports := []struct {
		name string
		tr   Transport
	}{
		{"pipe", TransportPipe},
		{"tcp", TransportTCP},
		{"wan", TransportWAN},
	}
	seed := uint64(11)
	g, certEps := FarGraph(n, d, eps, int64(seed))
	for _, sc := range invariantSchemes {
		cl, err := Split(g, k, sc.s, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range invariantProtocols {
			opts := Options{Protocol: pr.p, Eps: certEps, AvgDegree: g.AvgDegree()}
			base, err := cl.Test(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range transports {
				t.Run(fmt.Sprintf("%s/%s/%s", pr.name, sc.name, tc.name), func(t *testing.T) {
					opts := opts
					opts.Transport = tc.tr
					got, err := cl.Test(context.Background(), opts)
					if err != nil {
						t.Fatal(err)
					}
					if got.TriangleFree != base.TriangleFree || got.Witness != base.Witness {
						t.Fatalf("verdict diverged over %s: %+v vs %+v", tc.name, got, base)
					}
					if got.Bits != base.Bits || got.Rounds != base.Rounds {
						t.Fatalf("accounting diverged over %s: bits %d/%d rounds %d/%d",
							tc.name, got.Bits, base.Bits, got.Rounds, base.Rounds)
					}
					if !reflect.DeepEqual(got.PerPlayerBits, base.PerPlayerBits) {
						t.Fatalf("per-player bits diverged over %s: %v vs %v",
							tc.name, got.PerPlayerBits, base.PerPlayerBits)
					}
					if !reflect.DeepEqual(got.PhaseBits, base.PhaseBits) {
						t.Fatalf("phase bits diverged over %s: %v vs %v",
							tc.name, got.PhaseBits, base.PhaseBits)
					}
					if got.WireBytes != base.WireBytes {
						t.Fatalf("wire bytes diverged over %s: %d vs %d",
							tc.name, got.WireBytes, base.WireBytes)
					}
					if got.WireBytes > 0 && got.WireBytes < (got.Bits+7)/8 {
						t.Fatalf("wire bytes %d below bits/8 (%d bits)", got.WireBytes, got.Bits)
					}
					checkAccounting(t, got)
				})
			}
		}
	}
}

// TestInvariantRepeatedTestsDeterministic pins that Test is a pure
// function of (cluster seed, options): re-running any protocol on the
// same cluster reproduces the identical report.
func TestInvariantRepeatedTestsDeterministic(t *testing.T) {
	g, certEps := FarGraph(128, 6, 0.25, 9)
	cl, err := Split(g, 3, SplitDuplicate, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range invariantProtocols {
		opts := Options{Protocol: pr.p, Eps: certEps, AvgDegree: g.AvgDegree()}
		a, err := cl.Test(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.Test(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.TriangleFree != b.TriangleFree || a.Witness != b.Witness ||
			a.Bits != b.Bits || a.Rounds != b.Rounds {
			t.Fatalf("%s: repeated Test diverged: %+v vs %+v", pr.name, a, b)
		}
	}
}
