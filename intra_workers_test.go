package tricomm

// Differential determinism suite for intra-phase parallelism: for every
// protocol × split scheme, the same session run at intra-worker widths
// 1, 2 and 8 must produce byte-identical reports — verdict, witness,
// total bits, per-player bits, per-phase bits, rounds, and wire bytes.
// Width changes only which goroutine evaluates which chunk of a scan;
// every exposed reduction (exact sums, minima under the shared-key total
// order, order-preserving filters, lowest-index first hits) is
// grouping-invariant, so any divergence here is a bug in the
// work-splitting layer, not noise.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

func TestIntraWorkersDifferentialDeterminism(t *testing.T) {
	const (
		n    = 192
		d    = 8.0
		eps  = 0.25
		k    = 4
		seed = 11
	)
	g, certEps := FarGraph(n, d, eps, seed)
	for _, sc := range invariantSchemes {
		cl, err := Split(g, k, sc.s, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range invariantProtocols {
			t.Run(fmt.Sprintf("%s/%s", pr.name, sc.name), func(t *testing.T) {
				var base Report
				for wi, workers := range []int{1, 2, 8} {
					rep, err := cl.Test(context.Background(), Options{
						Protocol: pr.p, Eps: certEps, AvgDegree: g.AvgDegree(),
						IntraWorkers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					if wi == 0 {
						base = rep
						continue
					}
					if rep.TriangleFree != base.TriangleFree {
						t.Fatalf("width %d verdict %v != width 1 verdict %v", workers, rep.TriangleFree, base.TriangleFree)
					}
					if rep.Witness != base.Witness {
						t.Fatalf("width %d witness %v != width 1 witness %v", workers, rep.Witness, base.Witness)
					}
					if rep.Bits != base.Bits {
						t.Fatalf("width %d bits %d != width 1 bits %d", workers, rep.Bits, base.Bits)
					}
					if !reflect.DeepEqual(rep.PerPlayerBits, base.PerPlayerBits) {
						t.Fatalf("width %d per-player bits %v != width 1 %v", workers, rep.PerPlayerBits, base.PerPlayerBits)
					}
					if !reflect.DeepEqual(rep.PhaseBits, base.PhaseBits) {
						t.Fatalf("width %d phase bits %v != width 1 %v", workers, rep.PhaseBits, base.PhaseBits)
					}
					if rep.Rounds != base.Rounds {
						t.Fatalf("width %d rounds %d != width 1 rounds %d", workers, rep.Rounds, base.Rounds)
					}
					if rep.WireBytes != base.WireBytes {
						t.Fatalf("width %d wire bytes %d != width 1 %d", workers, rep.WireBytes, base.WireBytes)
					}
					// Everything else (protocol name, fault counters) must
					// match too; DeepEqual over the whole report is the
					// final catch-all.
					if !reflect.DeepEqual(rep, base) {
						t.Fatalf("width %d report differs from width 1:\n%+v\nvs\n%+v", workers, rep, base)
					}
				}
			})
		}
	}
}
