package tricomm_test

import (
	"context"
	"fmt"

	"tricomm"
)

// ExampleSplit shards a certified ε-far graph across players and runs the
// degree-oblivious one-round tester.
func ExampleSplit() {
	g, eps := tricomm.FarGraph(512, 8, 0.25, 1)
	cluster, err := tricomm.Split(g, 4, tricomm.SplitDisjoint, 42)
	if err != nil {
		panic(err)
	}
	rep, err := cluster.Test(context.Background(), tricomm.Options{
		Protocol: tricomm.Auto,
		Eps:      eps,
	})
	if err != nil {
		panic(err)
	}
	// One-sided error: a witness is always a genuine triangle.
	if !rep.TriangleFree {
		fmt.Println("found a real triangle:",
			g.IsTriangle(rep.Witness.A, rep.Witness.B, rep.Witness.C))
	}
	// Output: found a real triangle: true
}

// ExampleCluster_Test runs the exact baseline on a triangle-free control:
// exact detection never errs in either direction.
func ExampleCluster_Test() {
	free := tricomm.BipartiteGraph(256, 6, 7)
	cluster, err := tricomm.Split(free, 3, tricomm.SplitDuplicate, 9)
	if err != nil {
		panic(err)
	}
	rep, err := cluster.Test(context.Background(), tricomm.Options{Protocol: tricomm.Exact})
	if err != nil {
		panic(err)
	}
	fmt.Println("triangle-free:", rep.TriangleFree)
	// Output: triangle-free: true
}

// ExampleNewCluster assembles a cluster from edges the players already
// hold (possibly overlapping) rather than splitting a known graph.
func ExampleNewCluster() {
	inputs := [][]tricomm.Edge{
		{{U: 0, V: 1}, {U: 1, V: 2}},
		{{U: 0, V: 2}, {U: 1, V: 2}}, // duplication is allowed
		{{U: 3, V: 4}},
	}
	cluster, err := tricomm.NewCluster(5, inputs, 1)
	if err != nil {
		panic(err)
	}
	rep, err := cluster.Test(context.Background(), tricomm.Options{Protocol: tricomm.Exact})
	if err != nil {
		panic(err)
	}
	fmt.Println("witness:", rep.Witness)
	// Output: witness: (0,1,2)
}
