package tricomm

import (
	"context"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, certEps := FarGraph(600, 8, 0.25, 1)
	if certEps < 0.25 {
		t.Fatalf("certified eps %v", certEps)
	}
	cluster, err := Split(g, 4, SplitDuplicate, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.K() != 4 || cluster.N() != 600 {
		t.Fatalf("cluster shape %d/%d", cluster.K(), cluster.N())
	}
	if u := cluster.Union(); u.M() != g.M() {
		t.Fatalf("union lost edges: %d vs %d", u.M(), g.M())
	}
	found := false
	for seed := uint64(0); seed < 5 && !found; seed++ {
		c, err := Split(g, 4, SplitDisjoint, seed)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Test(context.Background(), Options{Protocol: Auto, Eps: certEps})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.TriangleFree {
			if !g.IsTriangle(rep.Witness.A, rep.Witness.B, rep.Witness.C) {
				t.Fatalf("phantom witness %v", rep.Witness)
			}
			found = true
		}
		if rep.Bits <= 0 || rep.Protocol == "" {
			t.Fatalf("report incomplete: %+v", rep)
		}
	}
	if !found {
		t.Fatal("auto tester never found a triangle in 5 runs on an ε-far graph")
	}
}

func TestFacadeAllProtocols(t *testing.T) {
	g, eps := FarGraph(400, 8, 0.25, 2)
	d := g.AvgDegree()
	cluster, err := Split(g, 3, SplitDisjoint, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{Auto, Interactive, InteractiveBlackboard, SimultaneousLow, SimultaneousHigh, SimultaneousOblivious, Exact} {
		rep, err := cluster.Test(context.Background(), Options{Protocol: p, Eps: eps, AvgDegree: d})
		if err != nil {
			t.Fatalf("protocol %d: %v", int(p), err)
		}
		if !rep.TriangleFree && !g.IsTriangle(rep.Witness.A, rep.Witness.B, rep.Witness.C) {
			t.Fatalf("protocol %d: phantom witness", int(p))
		}
		if len(rep.PerPlayerBits) != 3 {
			t.Fatalf("protocol %d: per-player stats missing", int(p))
		}
	}
	if _, err := cluster.Test(context.Background(), Options{Protocol: Protocol(99)}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestFacadeTriangleFreeSoundness(t *testing.T) {
	g := BipartiteGraph(500, 6, 3)
	cluster, err := Split(g, 4, SplitDuplicate, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{Auto, Interactive, Exact} {
		rep, err := cluster.Test(context.Background(), Options{Protocol: p, Eps: 0.2, AvgDegree: g.AvgDegree()})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.TriangleFree {
			t.Fatalf("protocol %d rejected a triangle-free graph", int(p))
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(-1, [][]Edge{{}}, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := NewCluster(5, nil, 1); err == nil {
		t.Fatal("no players accepted")
	}
	if _, err := NewCluster(5, [][]Edge{{{U: 0, V: 9}}}, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	c, err := NewCluster(5, [][]Edge{{{U: 0, V: 1}}, {{U: 1, V: 2}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Union().M() != 2 {
		t.Fatal("union wrong")
	}
}

func TestSplitValidation(t *testing.T) {
	g := RandomGraph(50, 4, 1)
	if _, err := Split(g, 0, SplitDisjoint, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Split(g, 3, SplitScheme(99), 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	for _, s := range []SplitScheme{SplitDisjoint, SplitDuplicate, SplitByVertex, SplitAll} {
		c, err := Split(g, 3, s, 1)
		if err != nil {
			t.Fatalf("scheme %d: %v", int(s), err)
		}
		if c.Union().M() != g.M() {
			t.Fatalf("scheme %d: union mismatch", int(s))
		}
	}
}

func TestGeneratorsFacade(t *testing.T) {
	if g := RandomGraph(300, 10, 5); g.N() != 300 || g.M() == 0 {
		t.Fatal("RandomGraph broken")
	}
	bp := BipartiteGraph(300, 10, 5)
	if !bp.IsTriangleFree() {
		t.Fatal("BipartiteGraph has a triangle")
	}
	// Determinism from seed.
	g1, _ := FarGraph(300, 8, 0.2, 11)
	g2, _ := FarGraph(300, 8, 0.2, 11)
	if g1.M() != g2.M() {
		t.Fatal("FarGraph not deterministic")
	}
}

func TestFacadeAssumeDisjoint(t *testing.T) {
	g, eps := FarGraph(500, 8, 0.25, 21)
	cluster, err := Split(g, 4, SplitDisjoint, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.Test(context.Background(), Options{
		Protocol: Interactive, Eps: eps, AvgDegree: g.AvgDegree(), AssumeDisjoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TriangleFree && !g.IsTriangle(rep.Witness.A, rep.Witness.B, rep.Witness.C) {
		t.Fatal("phantom witness under disjointness promise")
	}
}
